// Package sched runs registry experiments concurrently on top of the
// result store: a request names an experiment and a configuration, and
// the scheduler answers with the table — from the store backend when
// the fingerprint is cached (any store.Backend: the disk store, or a
// memory → disk → peer stack from store/tier), from a single shared
// computation when several requests race on one fingerprint
// (single-flight dedup), and from a fresh run otherwise.
//
// # Determinism
//
// Every experiment is a pure function of (Seed, Quick) — the measurement
// engines underneath are bit-identical for every worker count — so
// scheduling order, concurrency level, and cache state cannot change a
// table's content. Run returns outcomes in request order, which makes
// the scheduler's output byte-identical to the sequential
// loop-and-render of cmd/experiments for any Parallel value; tests
// assert exactly that.
//
// # Worker budget
//
// The configuration's Workers field is treated as the total goroutine
// budget of a Run call: with Parallel experiments in flight at once,
// each one's measurement engines get Workers/Parallel (at least 1)
// goroutines, so E concurrent experiments do not oversubscribe the host
// by a factor of E.
//
// # Backpressure and cancellation
//
// Computation admission is two-staged. The semaphore bounds how many
// experiments compute at once (parallel slots); the optional queue
// bound (WithQueue) caps how many more may wait for a slot. A request
// that would exceed both is rejected immediately with ErrBusy — the
// serving layer turns that into 429 + Retry-After — while store hits
// and flight joins always pass, so a saturated scheduler keeps serving
// its cache and in-flight computations complete undisturbed.
//
// TableCtx threads a per-request context through the whole path. The
// computation's own context rides into the estimator call path as
// Config.Ctx and is canceled once every requester has *disconnected*
// (context.Canceled — nobody is coming back): a still-queued
// computation then releases its admission without starting, and a
// cooperative estimator stops burning CPU. A requester leaving on a
// *deadline* (context.DeadlineExceeded — the serving layer answers 504
// and tells the client to retry) never cancels the flight: the
// computation detaches, runs to completion, and persists, so the retry
// is a cache hit instead of a livelock of re-timed-out recomputations.
// Compute-once economics beat a wasted partial run.
package sched

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/experiments"
	"repro/internal/par"
	"repro/internal/result"
	"repro/internal/store"
)

// ErrBusy reports that the scheduler's computation queue is full: the
// request was rejected before any work started, and the caller should
// retry later (HTTP layers answer 429 + Retry-After).
var ErrBusy = errors.New("sched: compute queue full")

// errAbandoned is the cancellation cause set when a flight's last
// requester disconnects. It tags the flight's context (and therefore
// the error a cooperative estimator returns from Config.Err) so
// TableCtx can retry exactly the abandoned-flight case — an estimator
// failing with its own context-flavored error (an internal network
// timeout, say) must surface to the caller, not loop forever.
var errAbandoned = errors.New("sched: flight abandoned by every requester")

// Scheduler coordinates experiment execution over an optional store
// backend. The zero value is not usable; construct with New.
type Scheduler struct {
	// backend caches completed tables; nil disables persistence (dedup
	// still works).
	backend store.Backend
	// parallel is the number of experiments run concurrently.
	parallel int
	// sem bounds in-flight computations to parallel slots; every
	// compute path (Run batches and direct Table calls alike) acquires
	// a slot, so a server fanning requests straight into Table cannot
	// oversubscribe the host.
	sem chan struct{}
	// tokens is the admission queue: a computation holds a token from
	// admission to retirement, so cap(tokens) = parallel + queue bound
	// caps standing work. nil means unbounded (no WithQueue option).
	tokens chan struct{}

	// owns reports whether this replica owns a fingerprint under the
	// fleet's rendezvous assignment (WithOwner). nil means no fleet:
	// everything counts as owned. It is introspection, not admission
	// policy — a non-owned computation is the fleet degradation path
	// (dead owner ⇒ local compute) and must never be refused, only
	// counted so /stats can show how much duplicate CPU the fleet layer
	// is absorbing.
	owns func(fingerprint string) bool

	mu      sync.Mutex
	flights map[string]*flight

	queued    atomic.Int64  // admitted computations waiting for a slot
	computing atomic.Int64  // computations running now
	admitted  atomic.Uint64 // granted admission decisions (fresh flights + Admit batches)
	rejected  atomic.Uint64
	abandoned atomic.Uint64 // queued computations whose requesters all left
	computed  atomic.Uint64
	foreign   atomic.Uint64 // computed runs of fingerprints this replica does not own
	busyNanos atomic.Int64
	maxNanos  atomic.Int64
}

// flight is one in-progress computation, shared by every request that
// arrives for its fingerprint while it runs.
type flight struct {
	done  chan struct{}
	table *result.Table
	err   error

	// ctx is the computation's own context: canceled with the
	// errAbandoned cause (by the last disconnecting waiter) once no
	// request wants the result anymore. It is what Config.Ctx carries
	// into the estimators.
	ctx    context.Context
	cancel context.CancelCauseFunc
	// waiters counts requests attached to the flight; guarded by the
	// scheduler's mu.
	waiters int
	// holdsToken records that this flight took its own queue admission
	// (the normal single-request path). A flight started under a batch
	// Admission rides the batch's token instead and must not release
	// one at retirement.
	holdsToken bool
}

// Option configures a Scheduler at construction.
type Option func(*Scheduler)

// WithQueue bounds how many computations may wait for a slot beyond the
// parallel ones already running: at most parallel+depth computations
// are admitted at once, and further misses fail fast with ErrBusy.
// depth < 0 is treated as 0 (no waiting room: reject whenever all slots
// are busy). Without this option the queue is unbounded.
func WithQueue(depth int) Option {
	return func(s *Scheduler) {
		if depth < 0 {
			depth = 0
		}
		s.tokens = make(chan struct{}, s.parallel+depth)
	}
}

// WithOwner tags computations with fleet ownership: owns(fingerprint)
// reports whether this replica is the rendezvous owner. Non-owned
// computations still run (they are the dead-owner degradation path) but
// are counted separately in Metrics.ComputedForeign — on a healthy
// fleet that counter stays near zero, and growth means non-owners are
// falling back to local compute (owner unreachable, or a fleet
// misconfiguration where replicas disagree on membership).
func WithOwner(owns func(fingerprint string) bool) Option {
	return func(s *Scheduler) { s.owns = owns }
}

// New returns a scheduler over backend (which may be nil for a
// memory-dedup-only scheduler) running up to parallel experiments at
// once; parallel < 1 means 1.
func New(backend store.Backend, parallel int, opts ...Option) *Scheduler {
	if parallel < 1 {
		parallel = 1
	}
	s := &Scheduler{
		backend:  backend,
		parallel: parallel,
		sem:      make(chan struct{}, parallel),
		flights:  make(map[string]*flight),
	}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// Backend returns the scheduler's store backend (nil when persistence
// is off).
func (s *Scheduler) Backend() store.Backend { return s.backend }

// Outcome is one scheduled experiment's result.
type Outcome struct {
	// ID is the experiment id.
	ID string
	// Table is the computed or cached table (nil on error).
	Table *result.Table
	// Encoded is the table's wire encoding — the memoized canonical
	// JSON plus a trailing newline, shared with every tier and response
	// holding the table (result.Table.EncodedJSON). Serving layers
	// write it directly: a cache hit costs zero re-encodes. It is nil
	// on error, and nil when the table itself cannot encode (the
	// serving layer re-derives the error from EncodedJSON then).
	// Callers must not modify it.
	Encoded []byte
	// CacheHit reports that the table came straight from the store.
	CacheHit bool
	// Tier names the store tier that answered a CacheHit ("memory",
	// "disk", "remote"; the backend's Name for single-tier stores).
	Tier string
	// Shared reports that this request piggybacked on another request's
	// in-flight computation (single-flight dedup).
	Shared bool
}

// deliver fills the outcome's table and encoded wire bytes. The encode
// is memoized on the table, so this is free for every table that any
// tier, Put, or earlier response has touched; an unencodable table
// leaves Encoded nil for the serving layer to diagnose.
func (out *Outcome) deliver(t *result.Table) {
	out.Table = t
	if b, err := t.EncodedJSON(); err == nil {
		out.Encoded = b
	}
}

// tierGetter is the optional backend refinement (implemented by
// store/tier.Tiered) that reports which tier answered a hit.
type tierGetter interface {
	GetTier(ctx context.Context, k store.Key) (*result.Table, string, bool)
}

// lookup reads the backend, resolving the answering tier's name when
// the backend can report it. The context bounds remote-tier round
// trips.
func (s *Scheduler) lookup(ctx context.Context, k store.Key) (*result.Table, string, bool) {
	if tg, ok := s.backend.(tierGetter); ok {
		return tg.GetTier(ctx, k)
	}
	t, ok := s.backend.Get(ctx, k)
	return t, s.backend.Name(), ok
}

// Table returns experiment e's table under cfg with no cancellation or
// queue deadline: store hit, shared flight, or fresh computation, in
// that order of preference.
func (s *Scheduler) Table(e experiments.Experiment, cfg experiments.Config) (*result.Table, Outcome, error) {
	//bcclint:allow(ctxflow) Table is the documented context-free entry for batch callers (cmd/experiments) that have no request to thread
	return s.TableCtx(context.Background(), e, cfg)
}

// TableCtx is Table under a request context. A context canceled while
// the request waits — on the queue or on another request's flight —
// abandons the request immediately. The flight itself is aborted (its
// queue admission released, its Config.Ctx canceled into the estimator)
// only when its last requester *disconnects* (context.Canceled: the
// client is gone and no retry is coming). A last requester leaving on a
// *deadline* (context.DeadlineExceeded: the serving layer answers 504
// and the client is told to retry) detaches the computation instead —
// it runs to completion and persists, so the retry is a cache hit
// rather than a livelock of re-timed-out recomputations. ErrBusy
// reports queue-full rejection; the caller's own context errors pass
// through unwrapped.
func (s *Scheduler) TableCtx(ctx context.Context, e experiments.Experiment, cfg experiments.Config) (*result.Table, Outcome, error) {
	return s.tableCtx(ctx, e, cfg, false)
}

// Admission is one granted admission decision, held by a batch (a
// sweep) on behalf of every cell it schedules: the batch pays the
// queue token once, and flights started through Admission.TableCtx
// ride it instead of taking their own. Release returns the token;
// it is idempotent and must be called exactly when the batch is done
// scheduling (flights already started keep running — the token only
// gates NEW admissions).
type Admission struct {
	s    *Scheduler
	once sync.Once
}

// Release returns the batch's queue token. Safe to call more than
// once; only the first call releases.
func (a *Admission) Release() {
	a.once.Do(func() {
		if a.s.tokens != nil {
			<-a.s.tokens
		}
	})
}

// TableCtx is Scheduler.TableCtx under the batch's admission: a fresh
// computation started here does not take its own queue token (the
// batch already holds one), so a whole grid schedules under exactly
// one admission decision. Store hits and flight joins behave
// identically to the plain path.
func (a *Admission) TableCtx(ctx context.Context, e experiments.Experiment, cfg experiments.Config) (*result.Table, Outcome, error) {
	return a.s.tableCtx(ctx, e, cfg, true)
}

// Admit reserves one admission decision for a batch without starting
// any computation: the sweep-sized analogue of the per-request queue
// token. It never blocks — a full queue is ErrBusy immediately, the
// same fast-fail contract the per-request path has — and a granted
// admission counts once in Metrics.Admitted no matter how many cells
// later ride it.
func (s *Scheduler) Admit() (*Admission, error) {
	if s.tokens != nil {
		select {
		case s.tokens <- struct{}{}:
		default:
			s.rejected.Add(1)
			return nil, ErrBusy
		}
	}
	s.admitted.Add(1)
	return &Admission{s: s}, nil
}

// tableCtx is the shared request path; preAdmitted marks requests
// riding a batch Admission, whose fresh flights skip the queue token.
func (s *Scheduler) tableCtx(ctx context.Context, e experiments.Experiment, cfg experiments.Config, preAdmitted bool) (*result.Table, Outcome, error) {
	out := Outcome{ID: e.ID}
	k := store.KeyFor(e.ID, cfg.Params())
	for {
		if err := ctx.Err(); err != nil {
			return nil, out, err
		}
		// Join an in-progress flight before paying the backend lookup:
		// a lookup can cost a remote-tier round trip (seconds against a
		// dead peer), and an existing flight means the table is about
		// to exist anyway — identical concurrent misses must collapse
		// onto one computation without each stalling on the peer first.
		s.mu.Lock()
		fl, joined := s.flights[k.Fingerprint]
		if joined {
			fl.waiters++
			s.mu.Unlock()
		} else {
			s.mu.Unlock()
			if s.backend != nil {
				if t, tierName, ok := s.lookup(ctx, k); ok {
					out.deliver(t)
					out.CacheHit, out.Tier = true, tierName
					return t, out, nil
				}
			}
			s.mu.Lock()
			// The lookup ran unlocked; another request may have
			// registered the flight meanwhile.
			fl, joined = s.flights[k.Fingerprint]
			if joined {
				fl.waiters++
			} else {
				// A fresh computation needs a queue admission — unless the
				// request rides a batch Admission that already paid it.
				// Rejection happens before the flight is registered, so an
				// ErrBusy never wedges later requests for the fingerprint.
				holdsToken := false
				if !preAdmitted {
					if s.tokens != nil {
						select {
						case s.tokens <- struct{}{}:
							holdsToken = true
						default:
							s.mu.Unlock()
							s.rejected.Add(1)
							return nil, out, ErrBusy
						}
					}
					s.admitted.Add(1)
				}
				//bcclint:allow(ctxflow) a flight outlives any one caller by design: joiners come and go, and a deadline leaver must not cancel the shared computation (see TableCtx)
				flCtx, cancel := context.WithCancelCause(context.Background())
				fl = &flight{done: make(chan struct{}), ctx: flCtx, cancel: cancel, waiters: 1, holdsToken: holdsToken}
				s.flights[k.Fingerprint] = fl
				go s.compute(k, fl, e, cfg)
			}
			s.mu.Unlock()
		}

		select {
		case <-fl.done:
			if fl.err != nil {
				if errors.Is(fl.err, errAbandoned) {
					// Inherited: this flight was abandoned by *other*
					// requesters. If our own context is also done (both
					// select channels ready — Go picks either), report
					// our error, never the internal sentinel; otherwise
					// retry — the flight is already retired, so the
					// next round is a store hit or a fresh computation.
					if err := ctx.Err(); err != nil {
						return nil, out, err
					}
					continue
				}
				// Any other error, context-flavored or not, is the
				// experiment's own and surfaces.
				return nil, out, fl.err
			}
			out.deliver(fl.table)
			out.Shared = joined
			return fl.table, out, nil
		case <-ctx.Done():
			// This request gives up; the flight lives on for its
			// remaining waiters. The last *disconnecting* leaver cancels
			// the flight's own context (abort a queued computation and
			// release its admission; tell a cooperative estimator to
			// stop); a deadline leaver detaches instead — see above.
			s.mu.Lock()
			fl.waiters--
			if fl.waiters <= 0 && errors.Is(ctx.Err(), context.Canceled) {
				fl.cancel(errAbandoned)
			}
			s.mu.Unlock()
			return nil, out, ctx.Err()
		}
	}
}

// compute owns one flight: queue for a slot, run the experiment,
// persist, retire. It runs on its own goroutine so requester timeouts
// never truncate a computation that someone else still wants.
func (s *Scheduler) compute(k store.Key, fl *flight, e experiments.Experiment, cfg experiments.Config) {
	// finish publishes the result and retires the flight. Retirement
	// and the admission release both happen before done is signalled:
	// a request arriving after the store write hits the store, one
	// arriving after an error recomputes rather than inheriting it
	// forever, and a waiter waking to retry an abandoned flight finds
	// the queue capacity this computation held already free (no
	// spurious ErrBusy).
	finish := func(table *result.Table, err error) {
		fl.table, fl.err = table, err
		s.mu.Lock()
		delete(s.flights, k.Fingerprint)
		s.mu.Unlock()
		if fl.holdsToken {
			<-s.tokens
		}
		close(fl.done)
		fl.cancel(nil)
	}

	s.queued.Add(1)
	select {
	case s.sem <- struct{}{}:
		s.queued.Add(-1)
	case <-fl.ctx.Done():
		// Every requester left while we waited for a slot: release the
		// admission without ever starting the estimator.
		s.queued.Add(-1)
		s.abandoned.Add(1)
		finish(nil, context.Cause(fl.ctx))
		return
	}

	s.computing.Add(1)
	start := time.Now()
	var table *result.Table
	var err error
	// The slot release, metrics, store write, and flight retirement all
	// live in a defer so they run on every way out of this goroutine —
	// normal return, a panic converted below, and runtime.Goexit from
	// inside an estimator (which recover cannot observe). Nothing here
	// may leak the slot, the admission token, or the flight: with
	// parallel=1 any leak wedges the scheduler permanently.
	defer func() {
		elapsed := time.Since(start)
		<-s.sem
		s.computing.Add(-1)
		s.computed.Add(1)
		if s.owns != nil && !s.owns(k.Fingerprint) {
			s.foreign.Add(1)
		}
		s.busyNanos.Add(elapsed.Nanoseconds())
		for {
			max := s.maxNanos.Load()
			if elapsed.Nanoseconds() <= max || s.maxNanos.CompareAndSwap(max, elapsed.Nanoseconds()) {
				break
			}
		}
		if err == nil && table == nil {
			// The estimator unwound without producing anything —
			// runtime.Goexit, or a (nil, nil) return. Surface it as this
			// flight's error so waiters unblock and retries recompute.
			err = fmt.Errorf("sched: experiment %s terminated without a result", e.ID)
		}
		if err == nil && s.backend != nil {
			// A failed (or panicking) Put degrades the cache, not the
			// answer: the computed table is still served, only
			// persistence is lost.
			func() {
				defer func() { _ = recover() }()
				_ = s.backend.Put(k, table)
			}()
		}
		finish(table, err)
	}()
	func() {
		// A panicking experiment becomes an error on this flight, not a
		// process crash: the computation goroutine has no upstream
		// recover (net/http's only covers the request goroutine).
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("sched: experiment %s panicked: %v", e.ID, r)
			}
		}()
		runCfg := cfg
		runCfg.Ctx = fl.ctx
		table, err = e.Run(runCfg)
	}()
}

// Flying reports whether a computation for fingerprint is in flight
// right now — registered and not yet retired. It is the probe
// endpoint's cheap answer to "should a non-owner wait instead of
// recomputing": a map lookup, no store traffic, no admission.
func (s *Scheduler) Flying(fingerprint string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.flights[fingerprint]
	return ok
}

// InFlight returns the fingerprints currently being computed or queued,
// sorted — the introspection /stats publishes so fleet peers (and
// operators) can see what this replica is already working on.
func (s *Scheduler) InFlight() []string {
	s.mu.Lock()
	out := make([]string, 0, len(s.flights))
	for fp := range s.flights {
		out = append(out, fp)
	}
	s.mu.Unlock()
	sort.Strings(out)
	return out
}

// Metrics is a snapshot of the scheduler's computation traffic.
type Metrics struct {
	// Queued and Computing describe standing work: admitted computations
	// waiting for a slot, and computations running now.
	Queued    int `json:"queued"`
	Computing int `json:"computing"`
	// Parallel is the computation slot count; Capacity is the admission
	// bound (slots + queue depth, 0 when unbounded).
	Parallel int `json:"parallel"`
	Capacity int `json:"capacity"`
	// Admitted counts granted admission decisions: one per fresh
	// single-request flight plus one per Admit batch, however many
	// cells the batch later schedules — the counter the one-admission-
	// per-sweep tests pin. Rejected counts ErrBusy fast-failures;
	// Abandoned counts queued computations whose requesters all left
	// before a slot freed.
	Admitted  uint64 `json:"admitted"`
	Rejected  uint64 `json:"rejected"`
	Abandoned uint64 `json:"abandoned"`
	// Computed counts finished estimator runs (successes, failures, and
	// cooperative cancellations alike). The latency fields cover exactly
	// those runs. ComputedForeign is the subset for fingerprints this
	// replica does not own under the fleet assignment (0 without a
	// fleet): the duplicate-CPU cost of dead-owner fallbacks.
	Computed        uint64  `json:"computed"`
	ComputedForeign uint64  `json:"computed_foreign"`
	TotalBusyMS     float64 `json:"total_busy_ms"`
	MeanComputeMS   float64 `json:"mean_compute_ms"`
	MaxComputeMS    float64 `json:"max_compute_ms"`
}

// Metrics reports the scheduler's queue state and compute-latency
// counters.
func (s *Scheduler) Metrics() Metrics {
	m := Metrics{
		Queued:          int(s.queued.Load()),
		Computing:       int(s.computing.Load()),
		Parallel:        s.parallel,
		Admitted:        s.admitted.Load(),
		Rejected:        s.rejected.Load(),
		Abandoned:       s.abandoned.Load(),
		Computed:        s.computed.Load(),
		ComputedForeign: s.foreign.Load(),
	}
	if s.tokens != nil {
		m.Capacity = cap(s.tokens)
	}
	m.TotalBusyMS = float64(s.busyNanos.Load()) / 1e6
	m.MaxComputeMS = float64(s.maxNanos.Load()) / 1e6
	if m.Computed > 0 {
		m.MeanComputeMS = m.TotalBusyMS / float64(m.Computed)
	}
	return m
}

// Run executes the named experiments under cfg, up to parallel at once,
// splitting cfg.Workers across the concurrent flights. Outcomes come
// back in request order; the first error (lowest request index, par.Do's
// contract) aborts the batch.
func (s *Scheduler) Run(ids []string, cfg experiments.Config) ([]Outcome, error) {
	exps := make([]experiments.Experiment, len(ids))
	for i, id := range ids {
		e, ok := experiments.ByID(id)
		if !ok {
			return nil, fmt.Errorf("sched: unknown experiment %q", id)
		}
		exps[i] = e
	}

	// Divide the total goroutine budget across concurrent experiments.
	slots := s.parallel
	if len(exps) < slots {
		slots = len(exps)
	}
	if slots < 1 {
		slots = 1
	}
	perCfg := cfg
	perCfg.Workers = par.Workers(cfg.Workers) / slots
	if perCfg.Workers < 1 {
		perCfg.Workers = 1
	}

	outcomes := make([]Outcome, len(exps))
	err := par.Do(len(exps), func(i int) error {
		// Concurrency is bounded inside Table by the scheduler's
		// computation semaphore.
		_, out, err := s.Table(exps[i], perCfg)
		if err != nil {
			return fmt.Errorf("%s: %w", exps[i].ID, err)
		}
		outcomes[i] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	return outcomes, nil
}
