package sched

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/result"
	"repro/internal/store"
)

// countingExperiment returns a synthetic registry entry whose Run
// increments calls, optionally blocking on release until the test lets
// it finish.
func countingExperiment(id string, calls *atomic.Int64, started, release chan struct{}) experiments.Experiment {
	return experiments.Experiment{
		ID:    id,
		Title: "synthetic " + id,
		Run: func(cfg experiments.Config) (*experiments.Table, error) {
			calls.Add(1)
			if started != nil {
				close(started)
			}
			if release != nil {
				<-release
			}
			t := &experiments.Table{ID: id, Title: "synthetic", Columns: []string{"seed"}}
			t.AddRow(result.Int(int(cfg.Seed)))
			return t, nil
		},
	}
}

func newStore(t *testing.T) *store.Store {
	t.Helper()
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestStoreHitSkipsRecompute is the compute-once contract: the second
// request for a fingerprint performs zero experiment (estimator) calls,
// even on a fresh scheduler sharing the same store directory.
func TestStoreHitSkipsRecompute(t *testing.T) {
	st := newStore(t)
	var calls atomic.Int64
	e := countingExperiment("EX", &calls, nil, nil)
	cfg := experiments.Config{Seed: 5, Quick: true}

	s1 := New(st, 2)
	tab1, out1, err := s1.Table(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out1.CacheHit || out1.Shared || calls.Load() != 1 {
		t.Fatalf("first request: outcome %+v, calls %d", out1, calls.Load())
	}

	s2 := New(st, 2)
	tab2, out2, err := s2.Table(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !out2.CacheHit {
		t.Fatalf("second request missed the store: %+v", out2)
	}
	if out2.Tier != "disk" {
		t.Fatalf("hit tier %q, want disk", out2.Tier)
	}
	if calls.Load() != 1 {
		t.Fatalf("second request recomputed: %d estimator calls", calls.Load())
	}
	if !tab1.Equal(tab2) {
		t.Fatal("cached table differs from computed table")
	}

	// A different seed is a different fingerprint: it must compute.
	if _, out3, err := s2.Table(e, experiments.Config{Seed: 6, Quick: true}); err != nil || out3.CacheHit {
		t.Fatalf("distinct seed served from cache: %+v err=%v", out3, err)
	}
	if calls.Load() != 2 {
		t.Fatalf("distinct seed did not compute: %d calls", calls.Load())
	}
}

// TestSingleFlightDedup races 8 identical requests: exactly one
// computation may run, everyone gets the same table, and every
// non-leader is either a shared flight or (if it arrived after
// completion) a store hit.
func TestSingleFlightDedup(t *testing.T) {
	st := newStore(t)
	var calls atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	e := countingExperiment("EX", &calls, started, release)
	cfg := experiments.Config{Seed: 1}
	s := New(st, 4)

	outcomes := make([]Outcome, 8)
	tables := make([]*result.Table, 8)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tables[0], outcomes[0], _ = s.Table(e, cfg)
	}()
	<-started
	for i := 1; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tables[i], outcomes[i], _ = s.Table(e, cfg)
		}(i)
	}
	// Give the followers a moment to join the flight, then let the
	// leader finish. Late arrivals are store hits, so the assertions
	// below hold for any interleaving.
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()

	if calls.Load() != 1 {
		t.Fatalf("%d computations for 8 identical requests", calls.Load())
	}
	for i, out := range outcomes {
		if tables[i] == nil || !tables[0].Equal(tables[i]) {
			t.Fatalf("request %d got a different table", i)
		}
		if i > 0 && !out.Shared && !out.CacheHit {
			t.Fatalf("request %d neither shared the flight nor hit the store: %+v", i, out)
		}
	}
}

// TestFailedFlightRetries: an error must not be cached — the next
// request recomputes.
func TestFailedFlightRetries(t *testing.T) {
	var calls atomic.Int64
	boom := errors.New("boom")
	e := experiments.Experiment{
		ID: "EX",
		Run: func(cfg experiments.Config) (*experiments.Table, error) {
			if calls.Add(1) == 1 {
				return nil, boom
			}
			tab := &experiments.Table{ID: "EX", Columns: []string{"x"}}
			tab.AddRow(result.Int(1))
			return tab, nil
		},
	}
	s := New(newStore(t), 1)
	cfg := experiments.Config{Seed: 3}
	if _, _, err := s.Table(e, cfg); !errors.Is(err, boom) {
		t.Fatalf("first call error = %v, want boom", err)
	}
	tab, out, err := s.Table(e, cfg)
	if err != nil || tab == nil {
		t.Fatalf("retry failed: %v", err)
	}
	if out.CacheHit || out.Shared {
		t.Fatalf("retry did not recompute: %+v", out)
	}
	if calls.Load() != 2 {
		t.Fatalf("calls = %d, want 2", calls.Load())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	s := New(nil, 2)
	if _, err := s.Run([]string{"E99"}, experiments.Config{}); err == nil {
		t.Fatal("unknown id accepted")
	}
}

// TestSchedulerMatchesSequentialLoop renders real registry experiments
// through the scheduler at several concurrency levels and requires the
// output bytes to equal the plain sequential loop's.
func TestSchedulerMatchesSequentialLoop(t *testing.T) {
	ids := []string{"E1", "E13"}
	cfg := experiments.Config{Seed: 2019, Quick: true}

	var sequential bytes.Buffer
	for _, id := range ids {
		e, ok := experiments.ByID(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		tab, err := e.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		tab.Render(&sequential)
	}

	for _, parallel := range []int{1, 2, 8} {
		s := New(newStore(t), parallel)
		outcomes, err := s.Run(ids, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var got bytes.Buffer
		for _, out := range outcomes {
			out.Table.Render(&got)
		}
		if !bytes.Equal(sequential.Bytes(), got.Bytes()) {
			t.Fatalf("parallel=%d output differs from sequential loop", parallel)
		}
	}
}

// TestRunDedupsRepeatedIDs: the same id twice in one batch computes
// once (flight or store dedup) and both outcomes carry the table.
func TestRunDedupsRepeatedIDs(t *testing.T) {
	disk := newStore(t)
	s := New(disk, 4)
	cfg := experiments.Config{Seed: 7, Quick: true}
	outcomes, err := s.Run([]string{"E13", "E13", "E13"}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := disk.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Puts != 1 {
		t.Fatalf("repeated ids stored %d objects, want 1", st.Puts)
	}
	for i, out := range outcomes {
		if out.Table == nil || !outcomes[0].Table.Equal(out.Table) {
			t.Fatalf("outcome %d differs", i)
		}
	}
}

// TestFailedStorePutStillServesTable: losing the cache write must
// degrade persistence, never the answer.
func TestFailedStorePutStillServesTable(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Break the store so every Put fails: replace the objects directory
	// with a plain file (robust even when the test runs as root, unlike
	// permission bits).
	objects := filepath.Join(dir, "objects")
	if err := os.RemoveAll(objects); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(objects, []byte("not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}

	var calls atomic.Int64
	e := countingExperiment("EX", &calls, nil, nil)
	s := New(st, 1)
	tab, out, err := s.Table(e, experiments.Config{Seed: 4})
	if err != nil || tab == nil {
		t.Fatalf("computed table lost to a failed cache write: %v", err)
	}
	if out.CacheHit || out.Shared {
		t.Fatalf("outcome %+v, want a fresh computation", out)
	}
	// Nothing was cached, so the next request recomputes — still
	// serving answers.
	if _, _, err := s.Table(e, experiments.Config{Seed: 4}); err != nil {
		t.Fatalf("second request failed: %v", err)
	}
	if calls.Load() != 2 {
		t.Fatalf("calls = %d, want 2 (no cache, no error)", calls.Load())
	}
}

// TestPanickingExperimentBecomesError: since computations run on
// detached goroutines (requester timeouts must not truncate them), a
// panicking experiment surfaces as this flight's error — not a process
// crash — and must not leak the flight entry or the computation slot.
func TestPanickingExperimentBecomesError(t *testing.T) {
	var calls atomic.Int64
	e := experiments.Experiment{
		ID: "EX",
		Run: func(cfg experiments.Config) (*experiments.Table, error) {
			if calls.Add(1) == 1 {
				panic("experiment bug")
			}
			tab := &experiments.Table{ID: "EX", Columns: []string{"x"}}
			tab.AddRow(result.Int(1))
			return tab, nil
		},
	}
	s := New(newStore(t), 1) // parallel=1: a leaked slot would deadlock below
	cfg := experiments.Config{Seed: 8}
	if _, _, err := s.Table(e, cfg); err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("panic surfaced as %v, want a panicked error", err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if tab, _, err := s.Table(e, cfg); err != nil || tab == nil {
			t.Errorf("retry after panic failed: %v", err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("scheduler wedged after a panicking experiment")
	}
}

// TestGoexitingExperimentDoesNotWedgeScheduler: runtime.Goexit inside
// an estimator (which recover cannot observe) must still release the
// slot and retire the flight — with parallel=1 a leak would wedge the
// scheduler forever.
func TestGoexitingExperimentDoesNotWedgeScheduler(t *testing.T) {
	var calls atomic.Int64
	e := experiments.Experiment{
		ID: "EX",
		Run: func(cfg experiments.Config) (*experiments.Table, error) {
			if calls.Add(1) == 1 {
				runtime.Goexit()
			}
			tab := &experiments.Table{ID: "EX", Columns: []string{"x"}}
			tab.AddRow(result.Int(1))
			return tab, nil
		},
	}
	s := New(newStore(t), 1, WithQueue(0)) // any leak deadlocks or 429s below
	cfg := experiments.Config{Seed: 17}
	if _, _, err := s.Table(e, cfg); err == nil {
		t.Fatal("Goexit surfaced as success")
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if tab, _, err := s.Table(e, cfg); err != nil || tab == nil {
			t.Errorf("retry after Goexit failed: %v", err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("scheduler wedged after a Goexiting experiment")
	}
}

// panickingPutBackend serves Gets from the embedded backend but panics
// on every Put.
type panickingPutBackend struct{ store.Backend }

func (panickingPutBackend) Put(store.Key, *result.Table) error { panic("broken Put") }

// TestPanickingPutStillServesTable: a Backend whose Put panics degrades
// persistence, never the answer — and never the process.
func TestPanickingPutStillServesTable(t *testing.T) {
	var calls atomic.Int64
	e := countingExperiment("EX", &calls, nil, nil)
	s := New(panickingPutBackend{newStore(t)}, 1)
	tab, _, err := s.Table(e, experiments.Config{Seed: 18})
	if err != nil || tab == nil {
		t.Fatalf("computed table lost to a panicking cache write: %v", err)
	}
	// Nothing persisted, so the next request recomputes — still serving.
	if _, _, err := s.Table(e, experiments.Config{Seed: 18}); err != nil {
		t.Fatalf("second request failed: %v", err)
	}
	if calls.Load() != 2 {
		t.Fatalf("calls = %d, want 2", calls.Load())
	}
}

// TestQueueFullRejectsImmediately saturates one computation slot and
// zero waiting room: the next distinct request must fail fast with
// ErrBusy while the in-flight computation completes undisturbed.
func TestQueueFullRejectsImmediately(t *testing.T) {
	var calls atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	slow := countingExperiment("SLOW", &calls, started, release)
	fast := countingExperiment("FAST", &calls, nil, nil)
	s := New(newStore(t), 1, WithQueue(0))

	var wg sync.WaitGroup
	wg.Add(1)
	var slowTab *result.Table
	var slowErr error
	go func() {
		defer wg.Done()
		slowTab, _, slowErr = s.Table(slow, experiments.Config{Seed: 1})
	}()
	<-started

	if _, _, err := s.Table(fast, experiments.Config{Seed: 1}); !errors.Is(err, ErrBusy) {
		t.Fatalf("saturated scheduler returned %v, want ErrBusy", err)
	}
	if m := s.Metrics(); m.Rejected != 1 || m.Computing != 1 || m.Capacity != 1 {
		t.Fatalf("metrics %+v, want 1 rejection / 1 computing / capacity 1", m)
	}

	// The in-flight request is unaffected by the rejection.
	close(release)
	wg.Wait()
	if slowErr != nil || slowTab == nil {
		t.Fatalf("in-flight request failed under saturation: %v", slowErr)
	}
	// With the slot free again the previously rejected work computes.
	if _, _, err := s.Table(fast, experiments.Config{Seed: 1}); err != nil {
		t.Fatalf("post-saturation request failed: %v", err)
	}
}

// TestQueueFullStillServesCacheAndFlights: rejection applies only to
// fresh computations — store hits and flight joins pass a full queue.
func TestQueueFullStillServesCacheAndFlights(t *testing.T) {
	var calls atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	slow := countingExperiment("SLOW", &calls, started, release)
	cached := countingExperiment("CACHED", &calls, nil, nil)
	s := New(newStore(t), 1, WithQueue(0))

	// Warm the cache before saturating.
	if _, _, err := s.Table(cached, experiments.Config{Seed: 2}); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.Table(slow, experiments.Config{Seed: 2})
	}()
	<-started

	// Store hit under saturation.
	if _, out, err := s.Table(cached, experiments.Config{Seed: 2}); err != nil || !out.CacheHit {
		t.Fatalf("cache hit rejected under saturation: %+v err=%v", out, err)
	}
	// Flight join under saturation.
	joined := make(chan error, 1)
	go func() {
		_, _, err := s.Table(slow, experiments.Config{Seed: 2})
		joined <- err
	}()
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()
	if err := <-joined; err != nil {
		t.Fatalf("flight join rejected under saturation: %v", err)
	}
}

// TestCanceledQueuedRequestReleasesAdmission: a request canceled while
// its computation waits for a slot must release its queue admission —
// the estimator never runs — and later requests must find room again.
func TestCanceledQueuedRequestReleasesAdmission(t *testing.T) {
	var slowCalls, neverCalls atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	slow := countingExperiment("SLOW", &slowCalls, started, release)
	never := countingExperiment("NEVER", &neverCalls, nil, nil)
	s := New(newStore(t), 1, WithQueue(1))

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.Table(slow, experiments.Config{Seed: 3})
	}()
	<-started

	// This request is admitted to the queue (depth 1), then canceled.
	ctx, cancel := context.WithCancel(context.Background())
	queuedErr := make(chan error, 1)
	go func() {
		_, _, err := s.TableCtx(ctx, never, experiments.Config{Seed: 3})
		queuedErr <- err
	}()
	for s.Metrics().Queued == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-queuedErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled queued request returned %v", err)
	}
	// The abandoned computation must drain without running.
	deadline := time.Now().Add(5 * time.Second)
	for s.Metrics().Abandoned == 0 {
		if time.Now().After(deadline) {
			t.Fatal("abandoned queued computation never released its admission")
		}
		time.Sleep(time.Millisecond)
	}
	if neverCalls.Load() != 0 {
		t.Fatal("abandoned computation ran its estimator")
	}

	// The released admission has room for new work while SLOW still
	// computes (capacity 2 = 1 slot + 1 queue; only SLOW holds one).
	var other atomic.Int64
	otherStarted := make(chan struct{})
	otherRelease := make(chan struct{})
	queued := countingExperiment("QUEUED", &other, otherStarted, otherRelease)
	admitted := make(chan error, 1)
	go func() {
		_, _, err := s.Table(queued, experiments.Config{Seed: 3})
		admitted <- err
	}()
	// It must be admitted (queued), not rejected.
	for s.Metrics().Queued == 0 {
		select {
		case err := <-admitted:
			t.Fatalf("replacement request finished early: %v", err)
		default:
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	<-otherStarted
	close(otherRelease)
	wg.Wait()
	if err := <-admitted; err != nil {
		t.Fatalf("replacement request failed: %v", err)
	}
}

// TestCancellationReachesEstimator: once every requester abandons a
// flight, the computation's context — carried into the estimator as
// Config.Ctx — must report cancellation, and a cooperative estimator's
// early return must not be cached.
func TestCancellationReachesEstimator(t *testing.T) {
	var calls atomic.Int64
	started := make(chan struct{})
	canceled := make(chan struct{})
	e := experiments.Experiment{
		ID: "EX",
		Run: func(cfg experiments.Config) (*experiments.Table, error) {
			if calls.Add(1) == 1 {
				close(started)
				// Poll Config.Err the way long experiment loops do.
				deadline := time.Now().Add(5 * time.Second)
				for cfg.Err() == nil {
					if time.Now().After(deadline) {
						return nil, errors.New("cancellation never reached the estimator")
					}
					time.Sleep(time.Millisecond)
				}
				close(canceled)
				return nil, cfg.Err()
			}
			tab := &experiments.Table{ID: "EX", Columns: []string{"x"}}
			tab.AddRow(result.Int(1))
			return tab, nil
		},
	}
	disk := newStore(t)
	s := New(disk, 1)
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, _, err := s.TableCtx(ctx, e, experiments.Config{Seed: 9})
		errCh <- err
	}()
	<-started
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoned requester returned %v", err)
	}
	select {
	case <-canceled:
	case <-time.After(5 * time.Second):
		t.Fatal("estimator never observed Config.Ctx cancellation")
	}
	// The canceled partial run must not have been cached; the retry
	// computes fresh and succeeds.
	if tab, out, err := s.Table(e, experiments.Config{Seed: 9}); err != nil || tab == nil || out.CacheHit {
		t.Fatalf("retry after cancellation: %+v err=%v", out, err)
	}
}

// TestTimedOutRequesterDoesNotTruncateSharedFlight: when one of two
// requesters times out, the flight keeps its remaining waiter, runs to
// completion, and persists.
func TestTimedOutRequesterDoesNotTruncateSharedFlight(t *testing.T) {
	var calls atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	e := countingExperiment("EX", &calls, started, release)
	disk := newStore(t)
	s := New(disk, 1)
	cfg := experiments.Config{Seed: 10}

	patientErr := make(chan error, 1)
	go func() {
		_, _, err := s.Table(e, cfg)
		patientErr <- err
	}()
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, _, err := s.TableCtx(ctx, e, cfg); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("timed-out joiner returned %v", err)
	}
	close(release)
	if err := <-patientErr; err != nil {
		t.Fatalf("patient requester failed after a peer timed out: %v", err)
	}
	if _, ok := disk.Get(context.Background(), store.KeyFor("EX", result.Params{Seed: 10})); !ok {
		t.Fatal("completed flight was not persisted after a peer timed out")
	}
	if calls.Load() != 1 {
		t.Fatalf("calls = %d, want 1", calls.Load())
	}
}

// TestJoinerSurvivesAbandonedFlight: a request that joins a flight in
// the window after its other requesters all disconnected (the flight's
// context is canceled but the flight is not yet retired) must not
// inherit context.Canceled — it retries and gets a real table.
func TestJoinerSurvivesAbandonedFlight(t *testing.T) {
	var calls atomic.Int64
	started := make(chan struct{})
	canceledSeen := make(chan struct{})
	holdFinish := make(chan struct{})
	e := experiments.Experiment{
		ID: "EX",
		Run: func(cfg experiments.Config) (*experiments.Table, error) {
			if calls.Add(1) == 1 {
				close(started)
				deadline := time.Now().Add(5 * time.Second)
				for cfg.Err() == nil {
					if time.Now().After(deadline) {
						return nil, errors.New("owner cancellation never arrived")
					}
					time.Sleep(time.Millisecond)
				}
				// Hold the flight in its canceled-but-unretired window so
				// the joiner can attach deterministically.
				close(canceledSeen)
				<-holdFinish
				return nil, cfg.Err()
			}
			tab := &experiments.Table{ID: "EX", Columns: []string{"x"}}
			tab.AddRow(result.Int(1))
			return tab, nil
		},
	}
	s := New(newStore(t), 2)
	cfg := experiments.Config{Seed: 14}

	ctx, cancel := context.WithCancel(context.Background())
	ownerErr := make(chan error, 1)
	go func() {
		_, _, err := s.TableCtx(ctx, e, cfg)
		ownerErr <- err
	}()
	<-started
	cancel()
	if err := <-ownerErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("owner returned %v", err)
	}
	<-canceledSeen

	// The flight is canceled but still registered; join it now.
	joinerDone := make(chan struct{})
	var joinerTab *result.Table
	var joinerErr error
	go func() {
		defer close(joinerDone)
		joinerTab, _, joinerErr = s.Table(e, cfg)
	}()
	time.Sleep(20 * time.Millisecond) // let the joiner attach
	close(holdFinish)
	select {
	case <-joinerDone:
	case <-time.After(5 * time.Second):
		t.Fatal("joiner never returned")
	}
	if joinerErr != nil || joinerTab == nil {
		t.Fatalf("live joiner inherited the abandoned flight's fate: %v", joinerErr)
	}
	if calls.Load() != 2 {
		t.Fatalf("calls = %d, want 2 (canceled run + joiner's retry)", calls.Load())
	}
}

// TestSoleDeadlineLeaverDetaches: the last requester leaving on a
// deadline must NOT cancel the flight — the computation completes and
// persists, so the 504 client's retry is a cache hit instead of a
// livelock (cooperative estimators would otherwise never finish under
// a server timeout shorter than their runtime).
func TestSoleDeadlineLeaverDetaches(t *testing.T) {
	var calls atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	var sawCancel atomic.Bool
	e := experiments.Experiment{
		ID: "EX",
		Run: func(cfg experiments.Config) (*experiments.Table, error) {
			calls.Add(1)
			close(started)
			<-release
			// A cooperative estimator would abort here if the deadline
			// leaver had canceled the flight.
			if cfg.Err() != nil {
				sawCancel.Store(true)
				return nil, cfg.Err()
			}
			tab := &experiments.Table{ID: "EX", Columns: []string{"x"}}
			tab.AddRow(result.Int(1))
			return tab, nil
		},
	}
	disk := newStore(t)
	s := New(disk, 1)
	cfg := experiments.Config{Seed: 15}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, _, err := s.TableCtx(ctx, e, cfg); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("timed-out requester returned %v", err)
	}
	<-started
	close(release)

	// The detached computation must complete and persist.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := disk.Get(context.Background(), store.KeyFor("EX", result.Params{Seed: 15})); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("deadline-abandoned computation never persisted")
		}
		time.Sleep(time.Millisecond)
	}
	if sawCancel.Load() {
		t.Fatal("deadline leaver canceled the flight's context")
	}
	// The retry is a cache hit: zero further estimator calls.
	if _, out, err := s.Table(e, cfg); err != nil || !out.CacheHit {
		t.Fatalf("retry after 504: %+v err=%v", out, err)
	}
	if calls.Load() != 1 {
		t.Fatalf("calls = %d, want 1", calls.Load())
	}
}

// TestTieredBackendReportsTier: a scheduler over a tier stack surfaces
// which tier answered (the serving layer's X-Cache-Tier header).
func TestTieredBackendReportsTier(t *testing.T) {
	// A minimal tierGetter double keeps this test independent of the
	// tier package's import graph.
	var calls atomic.Int64
	e := countingExperiment("EX", &calls, nil, nil)
	cfg := experiments.Config{Seed: 11}
	s := New(namedBackend{Backend: newStore(t), tier: "memory"}, 1)
	if _, _, err := s.Table(e, cfg); err != nil {
		t.Fatal(err)
	}
	_, out, err := s.Table(e, cfg)
	if err != nil || !out.CacheHit || out.Tier != "memory" {
		t.Fatalf("outcome %+v err=%v, want a memory-tier hit", out, err)
	}
}

// namedBackend wraps a backend and reports hits under a fixed tier name
// via the optional GetTier refinement.
type namedBackend struct {
	store.Backend
	tier string
}

func (n namedBackend) GetTier(ctx context.Context, k store.Key) (*result.Table, string, bool) {
	t, ok := n.Backend.Get(ctx, k)
	return t, n.tier, ok
}

// countingBackend counts Get calls on top of a real backend.
type countingBackend struct {
	store.Backend
	gets atomic.Int64
}

func (c *countingBackend) Get(ctx context.Context, k store.Key) (*result.Table, bool) {
	c.gets.Add(1)
	return c.Backend.Get(ctx, k)
}

// TestFlightJoinSkipsBackendLookup: a request for a fingerprint whose
// flight is already running joins it without touching the backend — a
// lookup can cost a remote-tier round trip (seconds against a dead
// peer), which identical concurrent requests must not each pay.
func TestFlightJoinSkipsBackendLookup(t *testing.T) {
	var calls atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	e := countingExperiment("EX", &calls, started, release)
	backend := &countingBackend{Backend: newStore(t)}
	s := New(backend, 2)
	cfg := experiments.Config{Seed: 16}

	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		s.Table(e, cfg)
	}()
	<-started
	lookupsBefore := backend.gets.Load()

	joinerDone := make(chan error, 1)
	go func() {
		_, out, err := s.Table(e, cfg)
		if err == nil && !out.Shared {
			err = errors.New("joiner did not share the flight")
		}
		joinerDone <- err
	}()
	// Give the joiner time to attach; it must not have hit the backend.
	time.Sleep(30 * time.Millisecond)
	if got := backend.gets.Load(); got != lookupsBefore {
		t.Fatalf("flight join performed %d extra backend lookups", got-lookupsBefore)
	}
	close(release)
	<-leaderDone
	if err := <-joinerDone; err != nil {
		t.Fatal(err)
	}
}

func TestMetricsLatency(t *testing.T) {
	var calls atomic.Int64
	e := countingExperiment("EX", &calls, nil, nil)
	s := New(nil, 1)
	if _, _, err := s.Table(e, experiments.Config{Seed: 12}); err != nil {
		t.Fatal(err)
	}
	m := s.Metrics()
	if m.Computed != 1 || m.MeanComputeMS < 0 || m.MaxComputeMS < m.MeanComputeMS {
		t.Fatalf("latency metrics inconsistent: %+v", m)
	}
	if m.Queued != 0 || m.Computing != 0 {
		t.Fatalf("idle scheduler reports standing work: %+v", m)
	}
	if m.Capacity != 0 {
		t.Fatalf("unbounded scheduler reports capacity %d", m.Capacity)
	}
}

// TestAlreadyCanceledContext fails fast without touching the queue.
func TestAlreadyCanceledContext(t *testing.T) {
	var calls atomic.Int64
	e := countingExperiment("EX", &calls, nil, nil)
	s := New(nil, 1, WithQueue(0))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := s.TableCtx(ctx, e, experiments.Config{Seed: 13}); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled context returned %v", err)
	}
	if calls.Load() != 0 {
		t.Fatal("canceled request ran the estimator")
	}
	if m := s.Metrics(); m.Rejected != 0 {
		t.Fatalf("canceled request counted as a queue rejection: %+v", m)
	}
}

// TestOutcomeCarriesEncodedBytes: every successful outcome — computed,
// store hit, and flight share alike — carries the table's memoized wire
// encoding, byte-identical to CanonicalJSON + '\n', so serving layers
// write cached bytes instead of re-encoding per request.
func TestOutcomeCarriesEncodedBytes(t *testing.T) {
	st := newStore(t)
	var calls atomic.Int64
	e := countingExperiment("EX", &calls, nil, nil)
	cfg := experiments.Config{Seed: 5, Quick: true}

	s := New(st, 2)
	tab, out, err := s.Table(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	canonical, err := tab.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	want := append(canonical, '\n')
	if !bytes.Equal(out.Encoded, want) {
		t.Fatalf("computed outcome Encoded = %q, want %q", out.Encoded, want)
	}

	// The hit path returns the same memoized bytes with zero raw
	// encodes (the memory-free scheduler here reads the disk tier: the
	// decode allocates a fresh table, whose encode is paid once and
	// memoized on that pointer).
	tab2, out2, err := s.Table(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !out2.CacheHit || !bytes.Equal(out2.Encoded, want) {
		t.Fatalf("hit outcome: hit=%v Encoded=%q", out2.CacheHit, out2.Encoded)
	}
	before := result.Encodes()
	if _, err := tab2.EncodedJSON(); err != nil {
		t.Fatal(err)
	}
	if raw := result.Encodes() - before; raw != 0 {
		t.Fatalf("re-reading a delivered table's encoding cost %d raw encodes, want 0", raw)
	}

	// A shared flight delivers the bytes to the joiner too.
	started, release := make(chan struct{}), make(chan struct{})
	eb := countingExperiment("EB", &calls, started, release)
	join := make(chan Outcome, 1)
	go func() {
		_, o, _ := s.Table(eb, cfg)
		join <- o
	}()
	<-started
	done := make(chan Outcome, 1)
	go func() {
		_, o, _ := s.Table(eb, cfg)
		done <- o
	}()
	// Both requests are on the flight; release it.
	time.Sleep(10 * time.Millisecond)
	close(release)
	oA, oB := <-join, <-done
	if len(oA.Encoded) == 0 || !bytes.Equal(oA.Encoded, oB.Encoded) {
		t.Fatalf("flight outcomes carry different encodings: %q vs %q", oA.Encoded, oB.Encoded)
	}
}

// TestInFlightIntrospection: Flying/InFlight expose exactly the live
// flights — the fleet probe's data source — and empty out once the
// flight retires.
func TestInFlightIntrospection(t *testing.T) {
	s := New(nil, 2)
	var calls atomic.Int64
	started, release := make(chan struct{}), make(chan struct{})
	e := countingExperiment("EX", &calls, started, release)
	cfg := experiments.Config{Seed: 5, Quick: true}
	fp := store.KeyFor("EX", cfg.Params()).Fingerprint

	if s.Flying(fp) || len(s.InFlight()) != 0 {
		t.Fatal("idle scheduler reports flights")
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, _, err := s.Table(e, cfg); err != nil {
			t.Error(err)
		}
	}()
	<-started
	if !s.Flying(fp) {
		t.Fatal("running flight not reported by Flying")
	}
	if got := s.InFlight(); len(got) != 1 || got[0] != fp {
		t.Fatalf("InFlight = %v, want [%s]", got, fp)
	}
	close(release)
	<-done
	if s.Flying(fp) || len(s.InFlight()) != 0 {
		t.Fatal("retired flight still reported")
	}
}

// TestOwnerAwareMetrics: WithOwner counts non-owned computations
// (dead-owner fallbacks) without refusing them.
func TestOwnerAwareMetrics(t *testing.T) {
	cfgA := experiments.Config{Seed: 1, Quick: true}
	cfgB := experiments.Config{Seed: 2, Quick: true}
	owned := store.KeyFor("EX", cfgA.Params()).Fingerprint
	s := New(nil, 2, WithOwner(func(fp string) bool { return fp == owned }))

	var calls atomic.Int64
	e := countingExperiment("EX", &calls, nil, nil)
	if _, _, err := s.Table(e, cfgA); err != nil { // owned
		t.Fatal(err)
	}
	if _, _, err := s.Table(e, cfgB); err != nil { // foreign — must still run
		t.Fatal(err)
	}
	if calls.Load() != 2 {
		t.Fatalf("foreign computation was refused: %d calls", calls.Load())
	}
	m := s.Metrics()
	if m.Computed != 2 || m.ComputedForeign != 1 {
		t.Fatalf("metrics %+v, want computed=2 foreign=1", m)
	}
}
