package sched

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/result"
	"repro/internal/store"
)

// countingExperiment returns a synthetic registry entry whose Run
// increments calls, optionally blocking on release until the test lets
// it finish.
func countingExperiment(id string, calls *atomic.Int64, started, release chan struct{}) experiments.Experiment {
	return experiments.Experiment{
		ID:    id,
		Title: "synthetic " + id,
		Run: func(cfg experiments.Config) (*experiments.Table, error) {
			calls.Add(1)
			if started != nil {
				close(started)
			}
			if release != nil {
				<-release
			}
			t := &experiments.Table{ID: id, Title: "synthetic", Columns: []string{"seed"}}
			t.AddRow(result.Int(int(cfg.Seed)))
			return t, nil
		},
	}
}

func newStore(t *testing.T) *store.Store {
	t.Helper()
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestStoreHitSkipsRecompute is the compute-once contract: the second
// request for a fingerprint performs zero experiment (estimator) calls,
// even on a fresh scheduler sharing the same store directory.
func TestStoreHitSkipsRecompute(t *testing.T) {
	st := newStore(t)
	var calls atomic.Int64
	e := countingExperiment("EX", &calls, nil, nil)
	cfg := experiments.Config{Seed: 5, Quick: true}

	s1 := New(st, 2)
	tab1, out1, err := s1.Table(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out1.CacheHit || out1.Shared || calls.Load() != 1 {
		t.Fatalf("first request: outcome %+v, calls %d", out1, calls.Load())
	}

	s2 := New(st, 2)
	tab2, out2, err := s2.Table(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !out2.CacheHit {
		t.Fatalf("second request missed the store: %+v", out2)
	}
	if calls.Load() != 1 {
		t.Fatalf("second request recomputed: %d estimator calls", calls.Load())
	}
	if !tab1.Equal(tab2) {
		t.Fatal("cached table differs from computed table")
	}

	// A different seed is a different fingerprint: it must compute.
	if _, out3, err := s2.Table(e, experiments.Config{Seed: 6, Quick: true}); err != nil || out3.CacheHit {
		t.Fatalf("distinct seed served from cache: %+v err=%v", out3, err)
	}
	if calls.Load() != 2 {
		t.Fatalf("distinct seed did not compute: %d calls", calls.Load())
	}
}

// TestSingleFlightDedup races 8 identical requests: exactly one
// computation may run, everyone gets the same table, and every
// non-leader is either a shared flight or (if it arrived after
// completion) a store hit.
func TestSingleFlightDedup(t *testing.T) {
	st := newStore(t)
	var calls atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	e := countingExperiment("EX", &calls, started, release)
	cfg := experiments.Config{Seed: 1}
	s := New(st, 4)

	outcomes := make([]Outcome, 8)
	tables := make([]*result.Table, 8)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tables[0], outcomes[0], _ = s.Table(e, cfg)
	}()
	<-started
	for i := 1; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tables[i], outcomes[i], _ = s.Table(e, cfg)
		}(i)
	}
	// Give the followers a moment to join the flight, then let the
	// leader finish. Late arrivals are store hits, so the assertions
	// below hold for any interleaving.
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()

	if calls.Load() != 1 {
		t.Fatalf("%d computations for 8 identical requests", calls.Load())
	}
	for i, out := range outcomes {
		if tables[i] == nil || !tables[0].Equal(tables[i]) {
			t.Fatalf("request %d got a different table", i)
		}
		if i > 0 && !out.Shared && !out.CacheHit {
			t.Fatalf("request %d neither shared the flight nor hit the store: %+v", i, out)
		}
	}
}

// TestFailedFlightRetries: an error must not be cached — the next
// request recomputes.
func TestFailedFlightRetries(t *testing.T) {
	var calls atomic.Int64
	boom := errors.New("boom")
	e := experiments.Experiment{
		ID: "EX",
		Run: func(cfg experiments.Config) (*experiments.Table, error) {
			if calls.Add(1) == 1 {
				return nil, boom
			}
			tab := &experiments.Table{ID: "EX", Columns: []string{"x"}}
			tab.AddRow(result.Int(1))
			return tab, nil
		},
	}
	s := New(newStore(t), 1)
	cfg := experiments.Config{Seed: 3}
	if _, _, err := s.Table(e, cfg); !errors.Is(err, boom) {
		t.Fatalf("first call error = %v, want boom", err)
	}
	tab, out, err := s.Table(e, cfg)
	if err != nil || tab == nil {
		t.Fatalf("retry failed: %v", err)
	}
	if out.CacheHit || out.Shared {
		t.Fatalf("retry did not recompute: %+v", out)
	}
	if calls.Load() != 2 {
		t.Fatalf("calls = %d, want 2", calls.Load())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	s := New(nil, 2)
	if _, err := s.Run([]string{"E99"}, experiments.Config{}); err == nil {
		t.Fatal("unknown id accepted")
	}
}

// TestSchedulerMatchesSequentialLoop renders real registry experiments
// through the scheduler at several concurrency levels and requires the
// output bytes to equal the plain sequential loop's.
func TestSchedulerMatchesSequentialLoop(t *testing.T) {
	ids := []string{"E1", "E13"}
	cfg := experiments.Config{Seed: 2019, Quick: true}

	var sequential bytes.Buffer
	for _, id := range ids {
		e, ok := experiments.ByID(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		tab, err := e.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		tab.Render(&sequential)
	}

	for _, parallel := range []int{1, 2, 8} {
		s := New(newStore(t), parallel)
		outcomes, err := s.Run(ids, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var got bytes.Buffer
		for _, out := range outcomes {
			out.Table.Render(&got)
		}
		if !bytes.Equal(sequential.Bytes(), got.Bytes()) {
			t.Fatalf("parallel=%d output differs from sequential loop", parallel)
		}
	}
}

// TestRunDedupsRepeatedIDs: the same id twice in one batch computes
// once (flight or store dedup) and both outcomes carry the table.
func TestRunDedupsRepeatedIDs(t *testing.T) {
	s := New(newStore(t), 4)
	cfg := experiments.Config{Seed: 7, Quick: true}
	outcomes, err := s.Run([]string{"E13", "E13", "E13"}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Store().Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Puts != 1 {
		t.Fatalf("repeated ids stored %d objects, want 1", st.Puts)
	}
	for i, out := range outcomes {
		if out.Table == nil || !outcomes[0].Table.Equal(out.Table) {
			t.Fatalf("outcome %d differs", i)
		}
	}
}

// TestFailedStorePutStillServesTable: losing the cache write must
// degrade persistence, never the answer.
func TestFailedStorePutStillServesTable(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Break the store so every Put fails: replace the objects directory
	// with a plain file (robust even when the test runs as root, unlike
	// permission bits).
	objects := filepath.Join(dir, "objects")
	if err := os.RemoveAll(objects); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(objects, []byte("not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}

	var calls atomic.Int64
	e := countingExperiment("EX", &calls, nil, nil)
	s := New(st, 1)
	tab, out, err := s.Table(e, experiments.Config{Seed: 4})
	if err != nil || tab == nil {
		t.Fatalf("computed table lost to a failed cache write: %v", err)
	}
	if out.CacheHit || out.Shared {
		t.Fatalf("outcome %+v, want a fresh computation", out)
	}
	// Nothing was cached, so the next request recomputes — still
	// serving answers.
	if _, _, err := s.Table(e, experiments.Config{Seed: 4}); err != nil {
		t.Fatalf("second request failed: %v", err)
	}
	if calls.Load() != 2 {
		t.Fatalf("calls = %d, want 2 (no cache, no error)", calls.Load())
	}
}

// TestPanickingExperimentDoesNotWedgeScheduler: a panic in Run must not
// leak the flight entry or the computation slot — after the panic is
// recovered upstream (as net/http does), the same fingerprint must be
// computable again.
func TestPanickingExperimentDoesNotWedgeScheduler(t *testing.T) {
	var calls atomic.Int64
	e := experiments.Experiment{
		ID: "EX",
		Run: func(cfg experiments.Config) (*experiments.Table, error) {
			if calls.Add(1) == 1 {
				panic("experiment bug")
			}
			tab := &experiments.Table{ID: "EX", Columns: []string{"x"}}
			tab.AddRow(result.Int(1))
			return tab, nil
		},
	}
	s := New(newStore(t), 1) // parallel=1: a leaked slot would deadlock below
	cfg := experiments.Config{Seed: 8}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic did not propagate")
			}
		}()
		s.Table(e, cfg)
	}()
	done := make(chan struct{})
	go func() {
		defer close(done)
		if tab, _, err := s.Table(e, cfg); err != nil || tab == nil {
			t.Errorf("retry after panic failed: %v", err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("scheduler wedged after a panicking experiment")
	}
}
