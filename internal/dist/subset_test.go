package dist

import (
	"math"
	"math/big"
	"testing"
)

func collectSubsets(n, k int) [][]int {
	var out [][]int
	ForEachSubset(n, k, func(c []int) {
		out = append(out, append([]int(nil), c...))
	})
	return out
}

// lexLess reports whether subset a precedes b lexicographically.
func lexLess(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func TestForEachSubsetCountAndOrder(t *testing.T) {
	nMax := 10
	if !testing.Short() {
		nMax = 14
	}
	for n := 0; n <= nMax; n++ {
		for k := 0; k <= n; k++ {
			subs := collectSubsets(n, k)
			if want := int(Binomial(n, k)); len(subs) != want {
				t.Fatalf("ForEachSubset(%d, %d) yielded %d subsets, want C = %d",
					n, k, len(subs), want)
			}
			seen := map[string]bool{}
			for i, c := range subs {
				if len(c) != k {
					t.Fatalf("subset %v has size %d, want %d", c, len(c), k)
				}
				for j, v := range c {
					if v < 0 || v >= n {
						t.Fatalf("subset %v has out-of-range element", c)
					}
					if j > 0 && c[j-1] >= v {
						t.Fatalf("subset %v not strictly increasing", c)
					}
				}
				key := ""
				for _, v := range c {
					key += string(rune('A' + v))
				}
				if seen[key] {
					t.Fatalf("subset %v yielded twice", c)
				}
				seen[key] = true
				if i > 0 && !lexLess(subs[i-1], c) {
					t.Fatalf("subsets out of lexicographic order: %v before %v",
						subs[i-1], c)
				}
			}
		}
	}
}

func TestForEachSubsetDegenerate(t *testing.T) {
	// k = 0: exactly one empty subset.
	calls := 0
	ForEachSubset(5, 0, func(c []int) {
		calls++
		if len(c) != 0 {
			t.Fatalf("empty subset has len %d", len(c))
		}
	})
	if calls != 1 {
		t.Fatalf("k=0 yielded %d subsets, want 1", calls)
	}
	// k = n: exactly the full set.
	calls = 0
	ForEachSubset(4, 4, func(c []int) {
		calls++
		for i, v := range c {
			if v != i {
				t.Fatalf("full subset wrong: %v", c)
			}
		}
	})
	if calls != 1 {
		t.Fatalf("k=n yielded %d subsets, want 1", calls)
	}
	// k > n and k < 0: nothing.
	ForEachSubset(3, 4, func([]int) { t.Fatal("k > n yielded a subset") })
	ForEachSubset(3, -1, func([]int) { t.Fatal("k < 0 yielded a subset") })
	// n = 0, k = 0: the empty set still has one empty subset.
	calls = 0
	ForEachSubset(0, 0, func([]int) { calls++ })
	if calls != 1 {
		t.Fatalf("ForEachSubset(0, 0) yielded %d, want 1", calls)
	}
}

func TestForEachSubsetReusesBuffer(t *testing.T) {
	// The documented contract: one buffer for the whole walk. Callers that
	// retain must copy — this test pins the aliasing behavior so a future
	// "fix" doesn't silently start allocating per subset.
	var first *int
	calls := 0
	ForEachSubset(6, 3, func(c []int) {
		if calls == 0 {
			first = &c[0]
		} else if &c[0] != first {
			t.Fatal("ForEachSubset allocated a fresh buffer mid-walk")
		}
		calls++
	})
}

func TestBinomialSmallValues(t *testing.T) {
	want := map[[2]int]float64{
		{0, 0}: 1, {1, 0}: 1, {1, 1}: 1,
		{4, 2}: 6, {5, 2}: 10, {6, 3}: 20,
		{10, 5}: 252, {20, 10}: 184756,
		{1000, 2}: 499500,
	}
	for nk, w := range want {
		if got := Binomial(nk[0], nk[1]); got != w {
			t.Fatalf("C(%d, %d) = %v, want %v", nk[0], nk[1], got, w)
		}
	}
	if Binomial(3, 4) != 0 || Binomial(3, -1) != 0 || Binomial(-1, 0) != 0 {
		t.Fatal("out-of-range Binomial not 0")
	}
}

func TestBinomialPascalAndSymmetry(t *testing.T) {
	for n := 1; n <= 40; n++ {
		for k := 1; k <= n; k++ {
			if got, want := Binomial(n, k), Binomial(n-1, k-1)+Binomial(n-1, k); got != want {
				t.Fatalf("Pascal broken at C(%d, %d): %v vs %v", n, k, got, want)
			}
			if Binomial(n, k) != Binomial(n, n-k) {
				t.Fatalf("symmetry broken at C(%d, %d)", n, k)
			}
		}
	}
}

func TestBinomialOverflowSafe(t *testing.T) {
	// The factorial form overflows float64 at n = 171; the multiplicative
	// form must agree with exact big-integer arithmetic far beyond that
	// (to float64 relative precision).
	cases := [][2]int{{170, 85}, {300, 150}, {500, 37}, {1000, 500}}
	for _, nk := range cases {
		n, k := nk[0], nk[1]
		exact, _ := new(big.Float).SetInt(new(big.Int).Binomial(int64(n), int64(k))).Float64()
		got := Binomial(n, k)
		if math.IsInf(got, 0) || math.Abs(got-exact)/exact > 1e-12 {
			t.Fatalf("C(%d, %d) = %v, want %v", n, k, got, exact)
		}
	}
	// Past float64 range the coefficient genuinely is infinite; it must
	// not wrap or go negative.
	if got := Binomial(2000, 1000); !math.IsInf(got, 1) {
		t.Fatalf("C(2000, 1000) = %v, want +Inf", got)
	}
}

func TestSubsetWeightsFormUniformMixture(t *testing.T) {
	// The exact pattern EnumeratePlantedGraphs relies on: weighting each
	// subset by 1/C(n, k) yields a probability distribution.
	const n, k = 9, 4
	total := Binomial(n, k)
	d := NewFinite()
	ForEachSubset(n, k, func(c []int) {
		key := ""
		for _, v := range c {
			key += string(rune('A' + v))
		}
		d.Add(key, 1/total)
	})
	if err := d.Validate(1e-9); err != nil {
		t.Fatal(err)
	}
}

func TestSubsetCountMatchesBinomial(t *testing.T) {
	for n := 0; n <= 24; n++ {
		for k := -1; k <= n+1; k++ {
			got := SubsetCount(n, k)
			want := Binomial(n, k)
			if float64(got) != want {
				t.Fatalf("SubsetCount(%d, %d) = %d, Binomial = %v", n, k, got, want)
			}
		}
	}
	if SubsetCount(62, 31) == 0 {
		t.Fatal("large in-range count came back zero")
	}
	// C(64, 32) ≈ 1.83e18 fits in uint64 even though the last
	// multiply-then-divide step's product does not: the overflow check
	// must judge the quotient, not the 128-bit intermediate.
	if got := SubsetCount(64, 32); got != 1832624140942590534 {
		t.Fatalf("SubsetCount(64, 32) = %d, want 1832624140942590534", got)
	}
}

func TestSubsetCountOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("overflowing count did not panic")
		}
	}()
	SubsetCount(128, 64)
}

func TestSubsetAtRankMatchesEnumerationOrder(t *testing.T) {
	for _, nk := range [][2]int{{1, 1}, {5, 2}, {6, 3}, {8, 4}, {7, 0}, {7, 7}} {
		n, k := nk[0], nk[1]
		rank := uint64(0)
		ForEachSubset(n, k, func(c []int) {
			got := SubsetAtRank(n, k, rank)
			for i := range c {
				if got[i] != c[i] {
					t.Fatalf("n=%d k=%d rank=%d: unranked %v, walk has %v", n, k, rank, got, c)
				}
			}
			rank++
		})
		if rank != SubsetCount(n, k) {
			t.Fatalf("n=%d k=%d: walked %d subsets, count says %d", n, k, rank, SubsetCount(n, k))
		}
	}
}

func TestSubsetAtRankOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range rank did not panic")
		}
	}()
	SubsetAtRank(5, 2, SubsetCount(5, 2))
}

func TestForEachSubsetRangeCoversPartition(t *testing.T) {
	// Any partition of [0, C(n,k)) into ranges must reproduce the full
	// walk, in order — the property the sharded enumerators rely on.
	const n, k = 9, 4
	total := SubsetCount(n, k)
	var whole [][]int
	ForEachSubset(n, k, func(c []int) {
		whole = append(whole, append([]int(nil), c...))
	})
	for _, pieces := range []int{1, 2, 3, 5, 8, 13} {
		var got [][]int
		for p := 0; p < pieces; p++ {
			lo := total * uint64(p) / uint64(pieces)
			hi := total * uint64(p+1) / uint64(pieces)
			ForEachSubsetRange(n, k, lo, hi, func(c []int) {
				got = append(got, append([]int(nil), c...))
			})
		}
		if len(got) != len(whole) {
			t.Fatalf("pieces=%d: %d subsets, want %d", pieces, len(got), len(whole))
		}
		for i := range whole {
			for j := range whole[i] {
				if got[i][j] != whole[i][j] {
					t.Fatalf("pieces=%d: subset %d is %v, want %v", pieces, i, got[i], whole[i])
				}
			}
		}
	}
}

func TestForEachSubsetRangeClipsAndEmpties(t *testing.T) {
	const n, k = 6, 2
	count := 0
	ForEachSubsetRange(n, k, 5, 1<<40, func([]int) { count++ })
	if want := int(SubsetCount(n, k)) - 5; count != want {
		t.Fatalf("clipped range visited %d, want %d", count, want)
	}
	ForEachSubsetRange(n, k, 3, 3, func([]int) { t.Fatal("empty range yielded") })
	ForEachSubsetRange(n, -1, 0, 10, func([]int) { t.Fatal("invalid k yielded") })
}
