package dist

import (
	"fmt"
	"math/rand"
	"testing"
)

// benchSink absorbs per-subset reads so the compiler cannot eliminate the
// enumeration body.
var benchSink int

// transcriptDist builds a distribution shaped like the exact lower-bound
// workloads: many long string keys (transcript encodings) with uneven
// mass.
func transcriptDist(r *rand.Rand, support int) *Finite {
	d := NewFinite()
	for i := 0; i < support; i++ {
		d.Add(fmt.Sprintf("turn:%04d|msg:%08x", i, r.Uint32()), 0.01+r.Float64())
	}
	if err := d.Normalize(); err != nil {
		panic(err)
	}
	d.Support() // prime the sorted-support cache, as real callers do
	return d
}

// BenchmarkTV measures the sorted-merge TV fast path. Both supports are
// pre-cached, so an iteration is a pure two-pointer walk: the benchmark
// must report 0 allocs/op.
func BenchmarkTV(b *testing.B) {
	for _, support := range []int{16, 256, 4096} {
		b.Run(fmt.Sprintf("support=%d", support), func(b *testing.B) {
			r := rand.New(rand.NewSource(1))
			da := transcriptDist(r, support)
			db := transcriptDist(r, support)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = TV(da, db)
			}
		})
	}
}

// BenchmarkTVSharedSupport measures the equal-support case (the common
// one when comparing two transcript distributions of the same protocol).
func BenchmarkTVSharedSupport(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	da := transcriptDist(r, 1024)
	db := NewFinite()
	for _, k := range da.Support() {
		db.Add(k, 0.01+r.Float64())
	}
	if err := db.Normalize(); err != nil {
		b.Fatal(err)
	}
	db.Support()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = TV(da, db)
	}
}

// BenchmarkForEachSubset measures the per-subset cost of the enumeration
// fast path. One op is one visited subset; the single index-buffer
// allocation is amortized over the C(n, k) walk, so allocs/op must report
// 0 on the fast path.
func BenchmarkForEachSubset(b *testing.B) {
	for _, nk := range [][2]int{{16, 4}, {20, 10}, {24, 12}} {
		n, k := nk[0], nk[1]
		b.Run(fmt.Sprintf("n=%d/k=%d", n, k), func(b *testing.B) {
			b.ReportAllocs()
			count := 0
			for count < b.N {
				ForEachSubset(n, k, func(c []int) {
					count++
					benchSink ^= c[k-1] // keep the buffer read live
				})
			}
		})
	}
}

// BenchmarkFromSamples measures the streaming empirical-distribution
// build over a Monte-Carlo-sized transcript batch.
func BenchmarkFromSamples(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	samples := make([]string, 20000)
	for i := range samples {
		samples[i] = fmt.Sprintf("transcript-%03d", r.Intn(512))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = FromSamples(samples)
	}
}

// BenchmarkSupportRebuild measures the cache-miss path: accumulate a
// fresh support, then sort it once.
func BenchmarkSupportRebuild(b *testing.B) {
	r := rand.New(rand.NewSource(4))
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%08x", r.Uint32())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := NewFinite()
		for _, k := range keys {
			d.Add(k, 1)
		}
		_ = d.Support()
	}
}

// internedPair builds two transcript-shaped distributions on one shared
// interner, the configuration the parallel engines hand to IntTV.
func internedPair(r *rand.Rand, support int) (*IntDist, *IntDist) {
	in := NewInterner()
	a, b := NewIntDist(in), NewIntDist(in)
	for i := 0; i < support; i++ {
		key := fmt.Sprintf("turn:%04d|msg:%08x", i, r.Uint32())
		a.AddKey(key, 0.01+r.Float64())
		b.AddKey(key, 0.01+r.Float64())
	}
	if err := a.Normalize(); err != nil {
		panic(err)
	}
	if err := b.Normalize(); err != nil {
		panic(err)
	}
	return a, b
}

// BenchmarkTVInterned measures the dense integer-keyed TV path: one walk
// over the shared id space with no hashing and no sorted supports. It
// must report 0 allocs/op, like the sorted-merge path it replaces in the
// measurement engines.
func BenchmarkTVInterned(b *testing.B) {
	for _, support := range []int{16, 256, 4096} {
		b.Run(fmt.Sprintf("support=%d", support), func(b *testing.B) {
			r := rand.New(rand.NewSource(5))
			da, db := internedPair(r, support)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = IntTV(da, db)
			}
		})
	}
}

// BenchmarkMerge measures the string-keyed shard combiner over
// transcript-shaped supports (one op = one 8-shard weighted merge).
func BenchmarkMerge(b *testing.B) {
	r := rand.New(rand.NewSource(6))
	const shards = 8
	ds := make([]*Finite, shards)
	ws := make([]float64, shards)
	for i := range ds {
		ds[i] = transcriptDist(r, 512)
		ws[i] = 1 / float64(shards)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MergeWeighted(ws, ds)
	}
}

// BenchmarkCountsMerge measures the integer shard combiner the parallel
// engines actually run: remapping one 4096-key shard accumulator into a
// warm merge target (one op = one shard folded in).
func BenchmarkCountsMerge(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	shard := NewCounts(NewInterner())
	for i := 0; i < 20000; i++ {
		shard.ObserveKey(fmt.Sprintf("turn:%04d|msg:%08x", r.Intn(4096), r.Uint32()&0xff))
	}
	merged := NewCounts(NewInterner())
	merged.Merge(shard)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		merged.Merge(shard)
	}
}

// BenchmarkInternBytes measures the hot-loop interning hit path (the
// first sight of every key is paid during setup).
func BenchmarkInternBytes(b *testing.B) {
	in := NewInterner()
	keys := make([][]byte, 1024)
	r := rand.New(rand.NewSource(8))
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("turn:%04d|msg:%08x", i, r.Uint32()))
		in.InternBytes(keys[i])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = in.InternBytes(keys[i&1023])
	}
}
