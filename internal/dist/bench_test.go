package dist

import (
	"fmt"
	"math/rand"
	"testing"
)

// benchSink absorbs per-subset reads so the compiler cannot eliminate the
// enumeration body.
var benchSink int

// transcriptDist builds a distribution shaped like the exact lower-bound
// workloads: many long string keys (transcript encodings) with uneven
// mass.
func transcriptDist(r *rand.Rand, support int) *Finite {
	d := NewFinite()
	for i := 0; i < support; i++ {
		d.Add(fmt.Sprintf("turn:%04d|msg:%08x", i, r.Uint32()), 0.01+r.Float64())
	}
	if err := d.Normalize(); err != nil {
		panic(err)
	}
	d.Support() // prime the sorted-support cache, as real callers do
	return d
}

// BenchmarkTV measures the sorted-merge TV fast path. Both supports are
// pre-cached, so an iteration is a pure two-pointer walk: the benchmark
// must report 0 allocs/op.
func BenchmarkTV(b *testing.B) {
	for _, support := range []int{16, 256, 4096} {
		b.Run(fmt.Sprintf("support=%d", support), func(b *testing.B) {
			r := rand.New(rand.NewSource(1))
			da := transcriptDist(r, support)
			db := transcriptDist(r, support)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = TV(da, db)
			}
		})
	}
}

// BenchmarkTVSharedSupport measures the equal-support case (the common
// one when comparing two transcript distributions of the same protocol).
func BenchmarkTVSharedSupport(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	da := transcriptDist(r, 1024)
	db := NewFinite()
	for _, k := range da.Support() {
		db.Add(k, 0.01+r.Float64())
	}
	if err := db.Normalize(); err != nil {
		b.Fatal(err)
	}
	db.Support()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = TV(da, db)
	}
}

// BenchmarkForEachSubset measures the per-subset cost of the enumeration
// fast path. One op is one visited subset; the single index-buffer
// allocation is amortized over the C(n, k) walk, so allocs/op must report
// 0 on the fast path.
func BenchmarkForEachSubset(b *testing.B) {
	for _, nk := range [][2]int{{16, 4}, {20, 10}, {24, 12}} {
		n, k := nk[0], nk[1]
		b.Run(fmt.Sprintf("n=%d/k=%d", n, k), func(b *testing.B) {
			b.ReportAllocs()
			count := 0
			for count < b.N {
				ForEachSubset(n, k, func(c []int) {
					count++
					benchSink ^= c[k-1] // keep the buffer read live
				})
			}
		})
	}
}

// BenchmarkFromSamples measures the streaming empirical-distribution
// build over a Monte-Carlo-sized transcript batch.
func BenchmarkFromSamples(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	samples := make([]string, 20000)
	for i := range samples {
		samples[i] = fmt.Sprintf("transcript-%03d", r.Intn(512))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = FromSamples(samples)
	}
}

// BenchmarkSupportRebuild measures the cache-miss path: accumulate a
// fresh support, then sort it once.
func BenchmarkSupportRebuild(b *testing.B) {
	r := rand.New(rand.NewSource(4))
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%08x", r.Uint32())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := NewFinite()
		for _, k := range keys {
			d.Add(k, 1)
		}
		_ = d.Support()
	}
}
