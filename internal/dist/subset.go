package dist

import (
	"fmt"
	"math/bits"
)

// ForEachSubset calls fn once for every size-k subset of {0, …, n−1}, in
// lexicographic order of the sorted index slice. The same backing buffer
// is passed to every call — the classic revolving-buffer enumeration — so
// the full C(n, k) walk performs exactly one allocation; callers that
// retain a subset must copy it first.
//
// k = 0 yields the single empty subset; k < 0 or k > n yields nothing.
// ExactTranscriptDist and the mixture enumerators call this inside loops
// over 2^Θ(n) graphs, which is why the per-subset cost is a handful of
// integer increments and no garbage.
func ForEachSubset(n, k int, fn func(c []int)) {
	if k < 0 || k > n {
		return
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		fn(idx)
		// Lexicographic successor: find the rightmost index that can still
		// move right, bump it, and pack the suffix tightly behind it.
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			return
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

// SubsetCount returns C(n, k) as an exact uint64 — the shard-planning
// counterpart of Binomial (which rounds through float64). It panics when
// the count overflows uint64: rank arithmetic on a truncated count would
// silently enumerate the wrong subsets, so refusing loudly is the only
// safe behaviour. 0 outside 0 ≤ k ≤ n.
func SubsetCount(n, k int) uint64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	c := uint64(1)
	for i := 1; i <= k; i++ {
		// c is C(n−k+i−1, i−1) here; multiply then divide keeps it exact.
		// The 128-bit product may exceed uint64 even when the quotient —
		// itself a binomial coefficient no larger than the result — fits,
		// so overflow is judged on the quotient (hi ≥ i ⇔ product/i ≥ 2^64).
		hi, lo := bits.Mul64(c, uint64(n-k+i))
		if hi >= uint64(i) {
			panic(fmt.Sprintf("dist: C(%d, %d) overflows uint64", n, k))
		}
		c, _ = bits.Div64(hi, lo, uint64(i))
	}
	return c
}

// SubsetAtRank returns the size-k subset of {0, …, n−1} with the given
// lexicographic rank — the order ForEachSubset visits — unranked by the
// standard combinatorial number system walk. It panics when rank is out
// of range; ranks come from shard arithmetic over SubsetCount, so an
// out-of-range rank is a partitioning bug.
func SubsetAtRank(n, k int, rank uint64) []int {
	total := SubsetCount(n, k)
	if rank >= total {
		panic(fmt.Sprintf("dist: subset rank %d out of range (C(%d, %d) = %d)", rank, n, k, total))
	}
	idx := make([]int, k)
	v := 0
	for pos := 0; pos < k; pos++ {
		for {
			// Subsets with idx[pos] = v: choose the remaining k−pos−1
			// elements from the n−v−1 values above v.
			below := SubsetCount(n-v-1, k-pos-1)
			if rank < below {
				idx[pos] = v
				v++
				break
			}
			rank -= below
			v++
		}
	}
	return idx
}

// ForEachSubsetRange calls fn for the subsets with lexicographic ranks in
// [lo, hi), in rank order: the contiguous-range form of ForEachSubset the
// parallel enumerators shard the C(n, k) walk with. The revolving-buffer
// contract is the same — one index buffer is reused across calls, so
// callers that retain a subset must copy it. Ranges clipped to the total
// count; lo ≥ hi yields nothing.
func ForEachSubsetRange(n, k int, lo, hi uint64, fn func(c []int)) {
	if k < 0 || k > n {
		return
	}
	if total := SubsetCount(n, k); hi > total {
		hi = total
	}
	if lo >= hi {
		return
	}
	idx := SubsetAtRank(n, k, lo)
	for r := lo; ; {
		fn(idx)
		if r++; r == hi {
			return
		}
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			return
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}
