package dist

// ForEachSubset calls fn once for every size-k subset of {0, …, n−1}, in
// lexicographic order of the sorted index slice. The same backing buffer
// is passed to every call — the classic revolving-buffer enumeration — so
// the full C(n, k) walk performs exactly one allocation; callers that
// retain a subset must copy it first.
//
// k = 0 yields the single empty subset; k < 0 or k > n yields nothing.
// ExactTranscriptDist and the mixture enumerators call this inside loops
// over 2^Θ(n) graphs, which is why the per-subset cost is a handful of
// integer increments and no garbage.
func ForEachSubset(n, k int, fn func(c []int)) {
	if k < 0 || k > n {
		return
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		fn(idx)
		// Lexicographic successor: find the rightmost index that can still
		// move right, bump it, and pack the suffix tightly behind it.
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			return
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}
