package dist

import "fmt"

// Merge returns a new distribution carrying the summed mass of the given
// distributions — the union combiner for shard-local accumulators whose
// masses are already on a common scale (e.g. exact-enumeration weights).
// Merging never re-walks samples: cost is proportional to the supports.
//
// Mass addition is commutative, so the resulting distribution is the same
// for every merge order up to floating-point association; the
// merge-order-invariance property tests pin that slack below 1e-12.
func Merge(ds ...*Finite) *Finite {
	out := NewFinite()
	for _, d := range ds {
		for _, k := range d.Support() {
			out.Add(k, d.Prob(k))
		}
	}
	return out
}

// MergeWeighted returns Σ_i weights[i]·ds[i]: the combiner for empirical
// shards of unequal sizes, where shard i's FromSamples result re-enters
// the pooled distribution with weight nᵢ/n. It panics when the slice
// lengths differ or a weight is negative — both are caller logic errors,
// matching Add's contract.
func MergeWeighted(weights []float64, ds []*Finite) *Finite {
	if len(weights) != len(ds) {
		panic(fmt.Sprintf("dist: MergeWeighted with %d weights for %d distributions", len(weights), len(ds)))
	}
	out := NewFinite()
	for i, d := range ds {
		for _, k := range d.Support() {
			out.Add(k, weights[i]*d.Prob(k))
		}
	}
	return out
}

// FromCounts is the counting constructor for string keys: it builds the
// empirical distribution of pre-tallied outcome counts without re-walking
// the samples they summarize. Each outcome receives mass count/total.
func FromCounts(counts map[string]uint64) *Finite {
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		panic("dist: FromCounts with no observations")
	}
	d := NewFinite()
	inv := 1 / float64(total)
	for k, c := range counts {
		if c != 0 {
			d.Add(k, float64(c)*inv)
		}
	}
	return d
}
