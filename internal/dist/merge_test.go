package dist

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// randomSamples draws a stream of outcome strings with a skewed law so
// merged empiricals have uneven mass, like real transcript batches.
func randomSamples(r *rand.Rand, n int) []string {
	out := make([]string, n)
	for i := range out {
		// Squaring skews toward low indices.
		v := r.Float64()
		out[i] = fmt.Sprintf("transcript-%03d", int(v*v*128))
	}
	return out
}

// randomSplit cuts samples into between 1 and maxShards non-empty
// contiguous shards at random cut points.
func randomSplit(r *rand.Rand, samples []string, maxShards int) [][]string {
	shards := 1 + r.Intn(maxShards)
	if shards > len(samples) {
		shards = len(samples)
	}
	cuts := map[int]bool{0: true}
	for len(cuts) < shards {
		cuts[1+r.Intn(len(samples)-1)] = true
	}
	points := make([]int, 0, len(cuts))
	for c := range cuts {
		points = append(points, c)
	}
	for i := range points {
		for j := i + 1; j < len(points); j++ {
			if points[j] < points[i] {
				points[i], points[j] = points[j], points[i]
			}
		}
	}
	var out [][]string
	for i, lo := range points {
		hi := len(samples)
		if i+1 < len(points) {
			hi = points[i+1]
		}
		out = append(out, samples[lo:hi])
	}
	return out
}

func TestMergeWeightedShardInvariance(t *testing.T) {
	// The satellite property: for random shard splits of a sample stream,
	// the weighted merge of per-shard FromSamples results must give TV
	// distances identical (within 1e-12) to the unsharded distribution,
	// regardless of merge order and shard count.
	r := rand.New(rand.NewSource(2019))
	for trial := 0; trial < 25; trial++ {
		samples := randomSamples(r, 400+r.Intn(1600))
		unsharded := FromSamples(samples)
		probe := FromSamples(randomSamples(r, 500))

		shards := randomSplit(r, samples, 9)
		ds := make([]*Finite, len(shards))
		ws := make([]float64, len(shards))
		for i, sh := range shards {
			ds[i] = FromSamples(sh)
			ws[i] = float64(len(sh)) / float64(len(samples))
		}
		// Merge in a random order.
		perm := r.Perm(len(shards))
		pd := make([]*Finite, len(shards))
		pw := make([]float64, len(shards))
		for i, j := range perm {
			pd[i], pw[i] = ds[j], ws[j]
		}
		merged := MergeWeighted(pw, pd)

		if tv := TV(merged, unsharded); tv > 1e-12 {
			t.Fatalf("trial %d: merged empirical is %v from unsharded (%d shards)",
				trial, tv, len(shards))
		}
		got, want := TV(merged, probe), TV(unsharded, probe)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("trial %d: TV to probe differs: merged %v vs unsharded %v", trial, got, want)
		}
	}
}

func TestMergeSumsMass(t *testing.T) {
	a := NewFinite()
	a.Add("x", 0.25)
	a.Add("y", 0.25)
	b := NewFinite()
	b.Add("y", 0.25)
	b.Add("z", 0.25)
	m := Merge(a, b)
	if err := m.Validate(1e-12); err != nil {
		t.Fatal(err)
	}
	if m.Prob("y") != 0.5 || m.Prob("x") != 0.25 || m.Prob("z") != 0.25 {
		t.Fatalf("merged masses wrong: %v %v %v", m.Prob("x"), m.Prob("y"), m.Prob("z"))
	}
	// Merge order cannot matter.
	if tv := TV(m, Merge(b, a)); tv > 1e-12 {
		t.Fatalf("merge order changed the distribution by %v", tv)
	}
}

func TestMergeWeightedPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch accepted")
		}
	}()
	MergeWeighted([]float64{1}, nil)
}

func TestFromCountsMatchesFromSamples(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	samples := randomSamples(r, 3000)
	counts := make(map[string]uint64)
	for _, s := range samples {
		counts[s]++
	}
	if tv := TV(FromCounts(counts), FromSamples(samples)); tv > 1e-12 {
		t.Fatalf("counting constructor diverges from sample walk by %v", tv)
	}
}

func TestFromCountsPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty counts accepted")
		}
	}()
	FromCounts(map[string]uint64{"x": 0})
}
