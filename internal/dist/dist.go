// Package dist implements finite probability distributions together with
// the combinatorial enumeration primitives the lower-bound framework is
// built on: total-variation distance, empirical distributions from
// transcript samples, binomial coefficients, and k-subset
// enumeration/unranking.
//
// These are the measurement substrate for the paper's Section 3/4
// indistinguishability arguments: every "the protocol cannot tell A_k from
// A_rand" claim bottoms out in a TV distance between two transcript
// distributions, and every mixture over clique placements bottoms out in a
// walk over the C(n, k) size-k subsets of [n].
//
// Two representations coexist. Finite keys outcomes by string and is the
// interop-friendly form; Interner/Counts/IntDist key outcomes by dense
// uint32 ids behind a string symbol table and are what the parallel
// measurement engines accumulate into: integer counts merge exactly
// across shards (Counts.Merge), Counts.Dist is the counting constructor,
// and IntTV compares two same-interner distributions with one dense
// walk. Merge/MergeWeighted/FromCounts are the Finite-side counterparts
// for callers pooling string-keyed distributions directly (weighted
// empirical shards, pre-tallied batches) without going through a symbol
// table.
//
// Performance notes. Finite caches its sorted support so that TV — the
// hot call inside ExactTranscriptDist's C(n,k) × 2^Θ(n) loops — runs as a
// single allocation-free merge over two sorted slices; IntTV needs no
// sort at all and is ~55× faster at transcript-scale supports (see
// BENCH_DIST.json). ForEachSubset and ForEachSubsetRange reuse one index
// buffer across all callbacks; callers that retain a subset must copy it.
package dist

import (
	"fmt"
	"math"
	"sort"
)

// Finite is a probability distribution with finite support over string
// outcomes. The zero value is not usable; construct with NewFinite,
// Uniform, FromSamples, or BoolDist. Mass is stored unnormalized until
// Normalize is called, so the type doubles as a weight accumulator.
type Finite struct {
	mass map[string]float64
	// support is the cached sorted key list; valid only when !dirty.
	// Add invalidates it, Support/TV rebuild it on demand, so the common
	// pattern "accumulate everything, then measure repeatedly" sorts once.
	support []string
	dirty   bool
}

// NewFinite returns an empty distribution with no mass.
func NewFinite() *Finite {
	return &Finite{mass: make(map[string]float64)}
}

// Add adds probability mass p to outcome key. Negative mass panics:
// every caller is accumulating weights or probabilities, so a negative
// value is always a logic error upstream.
func (d *Finite) Add(key string, p float64) {
	if p < 0 || math.IsNaN(p) {
		panic(fmt.Sprintf("dist: Add(%q, %v) with negative or NaN mass", key, p))
	}
	if _, ok := d.mass[key]; !ok {
		d.dirty = true
	}
	d.mass[key] += p
}

// Prob returns the mass on key (0 if absent).
func (d *Finite) Prob(key string) float64 { return d.mass[key] }

// Len returns the number of outcomes carrying mass entries.
func (d *Finite) Len() int { return len(d.mass) }

// Total returns the total mass.
func (d *Finite) Total() float64 {
	t := 0.0
	for _, p := range d.mass {
		t += p
	}
	return t
}

// Support returns the outcomes in sorted order. The slice is cached and
// shared: callers must not modify it. Adding a new outcome invalidates
// the cache; re-adding mass to an existing outcome does not. Rebuilds
// allocate a fresh slice, so a slice retained across an invalidating Add
// goes stale but is never rewritten in place.
func (d *Finite) Support() []string {
	if d.dirty || d.support == nil {
		d.support = make([]string, 0, len(d.mass))
		for k := range d.mass {
			d.support = append(d.support, k)
		}
		sort.Strings(d.support)
		d.dirty = false
	}
	return d.support
}

// Normalize scales the distribution to total mass 1. It fails on zero
// total mass (there is nothing to normalize towards).
func (d *Finite) Normalize() error {
	t := d.Total()
	if t == 0 {
		return fmt.Errorf("dist: cannot normalize zero-mass distribution")
	}
	for k := range d.mass {
		d.mass[k] /= t
	}
	return nil
}

// Validate checks that the distribution is a probability distribution up
// to tolerance tol: all masses non-negative and total mass within tol of
// 1. Enumerators use it to assert their weights really sum to 1.
func (d *Finite) Validate(tol float64) error {
	for k, p := range d.mass {
		if p < 0 {
			return fmt.Errorf("dist: negative mass %v on %q", p, k)
		}
	}
	if t := d.Total(); math.Abs(t-1) > tol {
		return fmt.Errorf("dist: total mass %v differs from 1 by more than %v", t, tol)
	}
	return nil
}

// Clone returns an independent copy.
func (d *Finite) Clone() *Finite {
	c := &Finite{mass: make(map[string]float64, len(d.mass)), dirty: true}
	for k, p := range d.mass {
		c.mass[k] = p
	}
	return c
}

// TV returns the total-variation distance ½ Σ_x |a(x) − b(x)| between two
// distributions. For normalized inputs the result is in [0, 1].
//
// This is the hot path of every exact lower-bound measurement: it merges
// the two cached sorted supports in a single pass and allocates nothing
// beyond (at most) one deferred cache rebuild per distribution.
func TV(a, b *Finite) float64 {
	sa, sb := a.Support(), b.Support()
	sum := 0.0
	i, j := 0, 0
	for i < len(sa) && j < len(sb) {
		switch {
		case sa[i] < sb[j]:
			sum += a.mass[sa[i]]
			i++
		case sa[i] > sb[j]:
			sum += b.mass[sb[j]]
			j++
		default:
			sum += math.Abs(a.mass[sa[i]] - b.mass[sb[j]])
			i++
			j++
		}
	}
	for ; i < len(sa); i++ {
		sum += a.mass[sa[i]]
	}
	for ; j < len(sb); j++ {
		sum += b.mass[sb[j]]
	}
	return sum / 2
}
