package dist

import (
	"fmt"
	"math"
)

// Uniform returns the uniform distribution over the given outcomes.
// Duplicate keys accumulate mass, so the result is uniform over the
// multiset (callers pass distinct keys).
func Uniform(keys []string) *Finite {
	if len(keys) == 0 {
		panic("dist: Uniform over empty outcome set")
	}
	d := NewFinite()
	p := 1 / float64(len(keys))
	for _, k := range keys {
		d.Add(k, p)
	}
	return d
}

// FromSamples returns the empirical distribution of the samples: each of
// the n samples contributes mass 1/n to its outcome. Single streaming
// pass over the input; the samples slice is not retained.
func FromSamples(samples []string) *Finite {
	if len(samples) == 0 {
		panic("dist: FromSamples with no samples")
	}
	d := NewFinite()
	w := 1 / float64(len(samples))
	for _, k := range samples {
		d.mass[k] += w
	}
	d.dirty = true
	return d
}

// BoolDist returns the Bernoulli distribution with P("1") = p and
// P("0") = 1 − p. Both outcomes are always present in the support so
// that TV(BoolDist(a), BoolDist(b)) = |a − b| holds for every pair,
// including the endpoints.
func BoolDist(p float64) *Finite {
	if p < 0 || p > 1 || math.IsNaN(p) {
		panic(fmt.Sprintf("dist: BoolDist(%v) outside [0,1]", p))
	}
	d := NewFinite()
	d.Add("0", 1-p)
	d.Add("1", p)
	return d
}

// Binomial returns C(n, k) as a float64, 0 outside 0 ≤ k ≤ n. The
// multiplicative form C(n,k) = Π_{i=1..k} (n−k+i)/i keeps every partial
// product a (float-rounded) binomial coefficient, so intermediate values
// never exceed the result — no overflow before the answer itself leaves
// float64 range (n ≳ 1029), unlike the factorial form which overflows
// at n = 171.
func Binomial(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	c := 1.0
	for i := 1; i <= k; i++ {
		c = c * float64(n-k+i) / float64(i)
	}
	return math.Round(c)
}
