package dist

import (
	"math"
	"math/rand"
	"testing"
)

// randomFinite returns a normalized distribution on s outcomes drawn from
// the shared alphabet a, b, c, … so independent draws overlap.
func randomFinite(r *rand.Rand, s int) *Finite {
	d := NewFinite()
	for i := 0; i < s; i++ {
		d.Add(string(rune('a'+i)), 0.01+r.Float64())
	}
	if err := d.Normalize(); err != nil {
		panic(err)
	}
	return d
}

func TestAddProbTotalLen(t *testing.T) {
	d := NewFinite()
	if d.Len() != 0 || d.Total() != 0 {
		t.Fatal("fresh distribution not empty")
	}
	d.Add("x", 0.25)
	d.Add("y", 0.5)
	d.Add("x", 0.25) // accumulate on the same key
	if got := d.Prob("x"); got != 0.5 {
		t.Fatalf("Prob(x) = %v, want 0.5", got)
	}
	if got := d.Prob("absent"); got != 0 {
		t.Fatalf("Prob(absent) = %v, want 0", got)
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d, want 2", d.Len())
	}
	if got := d.Total(); math.Abs(got-1) > 1e-15 {
		t.Fatalf("Total = %v, want 1", got)
	}
}

func TestAddRejectsBadMass(t *testing.T) {
	for _, p := range []float64{-0.1, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Add with mass %v did not panic", p)
				}
			}()
			NewFinite().Add("x", p)
		}()
	}
}

func TestSupportSortedAndCached(t *testing.T) {
	d := NewFinite()
	for _, k := range []string{"c", "a", "b"} {
		d.Add(k, 1.0/3)
	}
	s1 := d.Support()
	if len(s1) != 3 || s1[0] != "a" || s1[1] != "b" || s1[2] != "c" {
		t.Fatalf("Support not sorted: %v", s1)
	}
	// Re-adding mass to an existing key must not invalidate the cache.
	d.Add("b", 0.1)
	s2 := d.Support()
	if &s1[0] != &s2[0] {
		t.Fatal("Support cache rebuilt despite no new outcome")
	}
	// A new outcome must invalidate it.
	d.Add("aa", 0.1)
	s3 := d.Support()
	if len(s3) != 4 || s3[0] != "a" || s3[1] != "aa" {
		t.Fatalf("Support after invalidation wrong: %v", s3)
	}
}

func TestNormalize(t *testing.T) {
	d := NewFinite()
	d.Add("x", 3)
	d.Add("y", 1)
	if err := d.Normalize(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Prob("x")-0.75) > 1e-15 || math.Abs(d.Total()-1) > 1e-15 {
		t.Fatalf("Normalize wrong: P(x)=%v total=%v", d.Prob("x"), d.Total())
	}
	if err := NewFinite().Normalize(); err == nil {
		t.Fatal("Normalize of zero-mass distribution did not fail")
	}
}

func TestValidate(t *testing.T) {
	d := NewFinite()
	d.Add("x", 0.5)
	d.Add("y", 0.5)
	if err := d.Validate(1e-12); err != nil {
		t.Fatalf("valid distribution rejected: %v", err)
	}
	d.Add("z", 0.5)
	if err := d.Validate(1e-12); err == nil {
		t.Fatal("total mass 1.5 passed Validate")
	}
	// Negative mass cannot enter through Add; simulate a corrupted state.
	bad := NewFinite()
	bad.mass["x"] = -0.5
	bad.mass["y"] = 1.5
	if err := bad.Validate(1e-12); err == nil {
		t.Fatal("negative mass passed Validate")
	}
}

func TestClone(t *testing.T) {
	d := NewFinite()
	d.Add("x", 1)
	c := d.Clone()
	c.Add("y", 1)
	if d.Len() != 1 || c.Len() != 2 {
		t.Fatal("Clone not independent")
	}
	if c.Prob("x") != 1 {
		t.Fatal("Clone lost mass")
	}
}

func TestTVIdenticalAndDisjoint(t *testing.T) {
	d := Uniform([]string{"a", "b", "c"})
	if got := TV(d, d); got != 0 {
		t.Fatalf("TV(d, d) = %v", got)
	}
	e := Uniform([]string{"x", "y"})
	if got := TV(d, e); math.Abs(got-1) > 1e-15 {
		t.Fatalf("TV of disjoint supports = %v, want 1", got)
	}
}

func TestTVKnownValue(t *testing.T) {
	// TV((.5,.5), (.75,.25)) = 1/2 (|.25| + |.25|) = .25.
	a := Uniform([]string{"0", "1"})
	b := NewFinite()
	b.Add("0", 0.75)
	b.Add("1", 0.25)
	if got := TV(a, b); math.Abs(got-0.25) > 1e-15 {
		t.Fatalf("TV = %v, want 0.25", got)
	}
}

func TestTVPropertySymmetryAndRange(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		a := randomFinite(r, 1+r.Intn(8))
		b := randomFinite(r, 1+r.Intn(8))
		tv := TV(a, b)
		if math.Abs(tv-TV(b, a)) > 1e-15 {
			t.Fatalf("TV asymmetric: %v vs %v", tv, TV(b, a))
		}
		if tv < 0 || tv > 1+1e-12 {
			t.Fatalf("TV = %v outside [0,1]", tv)
		}
	}
}

func TestTVPropertyTriangleInequality(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		a := randomFinite(r, 1+r.Intn(6))
		b := randomFinite(r, 1+r.Intn(6))
		c := randomFinite(r, 1+r.Intn(6))
		if TV(a, c) > TV(a, b)+TV(b, c)+1e-12 {
			t.Fatalf("triangle inequality violated: TV(a,c)=%v > %v + %v",
				TV(a, c), TV(a, b), TV(b, c))
		}
	}
}

func TestTVAgainstDirectSum(t *testing.T) {
	// Cross-check the merge path against the naive union-of-supports sum.
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		a := randomFinite(r, 1+r.Intn(10))
		b := randomFinite(r, 1+r.Intn(10))
		union := map[string]bool{}
		for _, k := range a.Support() {
			union[k] = true
		}
		for _, k := range b.Support() {
			union[k] = true
		}
		want := 0.0
		for k := range union {
			want += math.Abs(a.Prob(k) - b.Prob(k))
		}
		want /= 2
		if got := TV(a, b); math.Abs(got-want) > 1e-12 {
			t.Fatalf("merge TV = %v, naive TV = %v", got, want)
		}
	}
}

func TestUniform(t *testing.T) {
	d := Uniform([]string{"a", "b", "c", "d"})
	for _, k := range d.Support() {
		if math.Abs(d.Prob(k)-0.25) > 1e-15 {
			t.Fatalf("P(%s) = %v, want 0.25", k, d.Prob(k))
		}
	}
	if err := d.Validate(1e-12); err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Uniform(nil) did not panic")
			}
		}()
		Uniform(nil)
	}()
}

func TestFromSamples(t *testing.T) {
	d := FromSamples([]string{"a", "a", "b", "a"})
	if math.Abs(d.Prob("a")-0.75) > 1e-15 || math.Abs(d.Prob("b")-0.25) > 1e-15 {
		t.Fatalf("empirical probs wrong: %v, %v", d.Prob("a"), d.Prob("b"))
	}
	if err := d.Validate(1e-12); err != nil {
		t.Fatal(err)
	}
	if s := d.Support(); len(s) != 2 || s[0] != "a" || s[1] != "b" {
		t.Fatalf("Support = %v", s)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("FromSamples(nil) did not panic")
			}
		}()
		FromSamples(nil)
	}()
}

func TestFromSamplesConvergence(t *testing.T) {
	// Empirical TV to the true distribution must shrink as samples grow
	// (law of large numbers; the plug-in estimator's bias is O(√(S/m))).
	truth := NewFinite()
	truth.Add("a", 0.5)
	truth.Add("b", 0.3)
	truth.Add("c", 0.2)
	r := rand.New(rand.NewSource(4))
	draw := func(m int) []string {
		out := make([]string, m)
		for i := range out {
			u := r.Float64()
			switch {
			case u < 0.5:
				out[i] = "a"
			case u < 0.8:
				out[i] = "b"
			default:
				out[i] = "c"
			}
		}
		return out
	}
	sizes := []int{100, 10000}
	if !testing.Short() {
		sizes = append(sizes, 1000000)
	}
	prev := math.Inf(1)
	for _, m := range sizes {
		tv := TV(FromSamples(draw(m)), truth)
		// Expected deviation at m samples is ~1/√m; allow a generous factor.
		if bound := 10 / math.Sqrt(float64(m)); tv > bound {
			t.Fatalf("empirical TV at m=%d is %v, above %v", m, tv, bound)
		}
		if tv > prev*2 {
			t.Fatalf("empirical TV not shrinking: m=%d gives %v after %v", m, tv, prev)
		}
		prev = tv
	}
}

func TestBoolDist(t *testing.T) {
	d := BoolDist(0.3)
	if math.Abs(d.Prob("1")-0.3) > 1e-15 || math.Abs(d.Prob("0")-0.7) > 1e-15 {
		t.Fatalf("BoolDist(0.3) probs: %v, %v", d.Prob("0"), d.Prob("1"))
	}
	// The identity the Fourier tests rely on: TV(Bern(a), Bern(b)) = |a−b|,
	// including the degenerate endpoints.
	for _, pair := range [][2]float64{{0.3, 0.8}, {0, 1}, {0.5, 0.5}, {0, 0.25}} {
		a, b := pair[0], pair[1]
		if got := TV(BoolDist(a), BoolDist(b)); math.Abs(got-math.Abs(a-b)) > 1e-15 {
			t.Fatalf("TV(Bern(%v), Bern(%v)) = %v, want %v", a, b, got, math.Abs(a-b))
		}
	}
	for _, p := range []float64{-0.01, 1.01, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("BoolDist(%v) did not panic", p)
				}
			}()
			BoolDist(p)
		}()
	}
}
