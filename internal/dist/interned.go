package dist

import (
	"fmt"
	"math"
)

// Interner assigns dense uint32 ids to string outcomes (transcript keys)
// and remembers the reverse mapping. Ids are handed out in first-intern
// order starting at 0, so an id doubles as an index into parallel arrays —
// the representation IntDist and Counts build on.
//
// An Interner is NOT goroutine-safe. The parallel measurement engines give
// every worker its own Interner and merge shard accumulators in shard
// order, which keeps the final id assignment a pure function of the
// enumeration order rather than of goroutine scheduling.
type Interner struct {
	ids  map[string]uint32
	keys []string
}

// NewInterner returns an empty symbol table.
func NewInterner() *Interner {
	return &Interner{ids: make(map[string]uint32)}
}

// Len returns the number of interned keys; valid ids are 0..Len()−1.
func (in *Interner) Len() int { return len(in.keys) }

// Intern returns the id of key, assigning the next dense id on first
// sight.
func (in *Interner) Intern(key string) uint32 {
	if id, ok := in.ids[key]; ok {
		return id
	}
	return in.add(key)
}

// InternBytes is Intern for a byte-slice key. On a hit it allocates
// nothing (the map lookup does not copy the bytes); only the first sight
// of a key pays the string conversion — that copy is the act of interning.
func (in *Interner) InternBytes(key []byte) uint32 {
	if id, ok := in.ids[string(key)]; ok {
		return id
	}
	return in.add(string(key))
}

func (in *Interner) add(key string) uint32 {
	if len(in.keys) == math.MaxUint32 {
		panic("dist: interner full (2^32 keys)")
	}
	id := uint32(len(in.keys))
	in.ids[key] = id
	in.keys = append(in.keys, key)
	return id
}

// Lookup returns the id of key without interning it.
func (in *Interner) Lookup(key string) (uint32, bool) {
	id, ok := in.ids[key]
	return id, ok
}

// Key returns the string for an id. It panics on an id that was never
// assigned: ids only come from this interner, so that is a caller mixing
// up symbol tables.
func (in *Interner) Key(id uint32) string {
	if int(id) >= len(in.keys) {
		panic(fmt.Sprintf("dist: interner has no id %d (len %d)", id, len(in.keys)))
	}
	return in.keys[id]
}

// Counts is an integer outcome accumulator over an interner: the
// shard-local object the parallel engines fill. Integer counts merge
// exactly — addition is associative and commutative with no rounding — so
// any shard split and any merge order reconstruct the sequential tallies
// bit for bit; conversion to probability mass happens once, in Dist.
type Counts struct {
	in *Interner
	n  []uint64
}

// NewCounts returns an empty accumulator over the interner. Several
// Counts may share one interner (e.g. the A-side and B-side tallies of a
// TV estimate, so equal transcripts share an id).
func NewCounts(in *Interner) *Counts {
	return &Counts{in: in}
}

// Interner returns the symbol table the counts are keyed by.
func (c *Counts) Interner() *Interner { return c.in }

// Observe counts outcome id once.
func (c *Counts) Observe(id uint32) {
	for int(id) >= len(c.n) {
		c.n = append(c.n, 0)
	}
	c.n[id]++
}

// ObserveBytes interns the key and counts it once — the one-call hot path
// for transcript loops holding a reusable KeyAppend buffer.
func (c *Counts) ObserveBytes(key []byte) {
	c.Observe(c.in.InternBytes(key))
}

// ObserveKey interns the string key and counts it once.
func (c *Counts) ObserveKey(key string) {
	c.Observe(c.in.Intern(key))
}

// Count returns the tally of an id (0 when never observed).
func (c *Counts) Count(id uint32) uint64 {
	if int(id) >= len(c.n) {
		return 0
	}
	return c.n[id]
}

// Total returns the number of observations.
func (c *Counts) Total() uint64 {
	var t uint64
	for _, v := range c.n {
		t += v
	}
	return t
}

// Merge folds src into c. When the two accumulators share an interner
// this is a plain vector add. Otherwise every key of src's symbol table —
// including keys src counted zero times — is interned into c's table in
// src-id order, so that after merging shards in shard order the combined
// id assignment equals the one a single sequential walk would have
// produced (paired accumulators on one shard interner stay aligned).
func (c *Counts) Merge(src *Counts) {
	if src.in == c.in {
		for id, v := range src.n {
			if v != 0 {
				c.n[c.grow(uint32(id))] += v
			}
		}
		return
	}
	for id := 0; id < src.in.Len(); id++ {
		nid := c.in.Intern(src.in.Key(uint32(id)))
		c.n[c.grow(nid)] += src.Count(uint32(id))
	}
}

// grow ensures id is addressable and returns it.
func (c *Counts) grow(id uint32) uint32 {
	for int(id) >= len(c.n) {
		c.n = append(c.n, 0)
	}
	return id
}

// Dist is the counting constructor: it converts the tallies into an
// IntDist by scaling every count by unit (1/samples for empirical
// distributions, the per-profile weight for exact enumerations). Because
// each mass is a single multiplication of an exactly merged integer, the
// result is bit-identical however the counting work was sharded.
func (c *Counts) Dist(unit float64) *IntDist {
	if unit < 0 || math.IsNaN(unit) {
		panic(fmt.Sprintf("dist: Counts.Dist with negative or NaN unit %v", unit))
	}
	d := NewIntDist(c.in)
	d.mass = make([]float64, len(c.n))
	for id, v := range c.n {
		d.mass[id] = float64(v) * unit
	}
	return d
}

// IntDist is a finite distribution over interned integer outcomes, stored
// densely: mass[id] is the probability of in.Key(id). It is the
// integer-keyed counterpart of Finite for the hot measurement loops —
// comparing two IntDists on the same interner needs no hashing and no
// sorting, just one walk over the dense id space.
//
// Like Finite, mass is unnormalized until Normalize, so the type doubles
// as a weight accumulator. The zero value is not usable; construct with
// NewIntDist or Counts.Dist.
type IntDist struct {
	in   *Interner
	mass []float64
}

// NewIntDist returns an empty distribution over the interner's outcomes.
func NewIntDist(in *Interner) *IntDist {
	return &IntDist{in: in}
}

// Interner returns the symbol table the distribution is keyed by.
func (d *IntDist) Interner() *Interner { return d.in }

// Add adds probability mass p to outcome id, growing the dense storage as
// needed. Negative or NaN mass panics, matching Finite.Add.
func (d *IntDist) Add(id uint32, p float64) {
	if p < 0 || math.IsNaN(p) {
		panic(fmt.Sprintf("dist: IntDist.Add(%d, %v) with negative or NaN mass", id, p))
	}
	for int(id) >= len(d.mass) {
		d.mass = append(d.mass, 0)
	}
	d.mass[id] += p
}

// AddKey interns key and adds mass to it.
func (d *IntDist) AddKey(key string, p float64) {
	d.Add(d.in.Intern(key), p)
}

// Prob returns the mass on id (0 if absent).
func (d *IntDist) Prob(id uint32) float64 {
	if int(id) >= len(d.mass) {
		return 0
	}
	return d.mass[id]
}

// ProbKey returns the mass on a string outcome (0 if never interned).
func (d *IntDist) ProbKey(key string) float64 {
	id, ok := d.in.Lookup(key)
	if !ok {
		return 0
	}
	return d.Prob(id)
}

// Len returns the number of outcomes carrying nonzero mass.
func (d *IntDist) Len() int {
	n := 0
	for _, p := range d.mass {
		if p != 0 {
			n++
		}
	}
	return n
}

// Total returns the total mass.
func (d *IntDist) Total() float64 {
	t := 0.0
	for _, p := range d.mass {
		t += p
	}
	return t
}

// Normalize scales the distribution to total mass 1, failing on zero
// total mass.
func (d *IntDist) Normalize() error {
	t := d.Total()
	if t == 0 {
		return fmt.Errorf("dist: cannot normalize zero-mass distribution")
	}
	for id := range d.mass {
		d.mass[id] /= t
	}
	return nil
}

// Validate checks non-negative masses summing to 1 within tol, matching
// Finite.Validate.
func (d *IntDist) Validate(tol float64) error {
	for id, p := range d.mass {
		if p < 0 {
			return fmt.Errorf("dist: negative mass %v on %q", p, d.in.Key(uint32(id)))
		}
	}
	if t := d.Total(); math.Abs(t-1) > tol {
		return fmt.Errorf("dist: total mass %v differs from 1 by more than %v", t, tol)
	}
	return nil
}

// Merge adds src's mass into d. Sharing an interner makes it a dense
// vector add; distinct interners remap src's ids through d's table in
// src-id order (the same determinism contract as Counts.Merge, minus the
// zero-mass keys: masses, unlike paired counts, carry their support).
func (d *IntDist) Merge(src *IntDist) {
	if src.in == d.in {
		for id, p := range src.mass {
			if p != 0 {
				d.Add(uint32(id), p)
			}
		}
		return
	}
	for id, p := range src.mass {
		if p != 0 {
			d.AddKey(src.in.Key(uint32(id)), p)
		}
	}
}

// Finite returns an independent string-keyed copy, for interop with the
// sorted-merge TV path and the Finite-based APIs.
func (d *IntDist) Finite() *Finite {
	f := NewFinite()
	for id, p := range d.mass {
		if p != 0 {
			f.Add(d.in.Key(uint32(id)), p)
		}
	}
	return f
}

// IntDistOf re-keys a string-keyed distribution onto an interner,
// walking the cached sorted support so the id assignment (and therefore
// the summation order of any later IntTV) is a pure function of the
// distribution's content, never of construction order. It is the bridge
// that lets a Finite reference join the dense comparison path: intern
// the reference first, build the other side over the same interner, and
// IntTV replaces the sorted-merge TV.
func IntDistOf(f *Finite, in *Interner) *IntDist {
	d := NewIntDist(in)
	for _, key := range f.Support() {
		d.AddKey(key, f.Prob(key))
	}
	return d
}

// IntTV returns the total-variation distance ½ Σ_x |a(x) − b(x)| between
// two distributions keyed by the SAME interner (it panics otherwise —
// dense ids are only comparable within one symbol table).
//
// This is the interned counterpart of TV: one walk over the dense id
// space, no hashing, no sorted supports, and zero allocations. The
// summation order is id order, so two runs that assign ids identically
// (the engines' merge-in-shard-order contract) get bit-identical values.
func IntTV(a, b *IntDist) float64 {
	if a.in != b.in {
		panic("dist: IntTV over distributions with different interners")
	}
	am, bm := a.mass, b.mass
	n := len(am)
	if len(bm) < n {
		n = len(bm)
	}
	sum := 0.0
	for id := 0; id < n; id++ {
		sum += math.Abs(am[id] - bm[id])
	}
	// Masses are non-negative by construction, so the unmatched tails
	// contribute their own mass.
	for _, p := range am[n:] {
		sum += p
	}
	for _, p := range bm[n:] {
		sum += p
	}
	return sum / 2
}
