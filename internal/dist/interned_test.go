package dist

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

func TestInternerAssignsDenseIds(t *testing.T) {
	in := NewInterner()
	keys := []string{"c", "a", "b", "a", "c", "d"}
	want := []uint32{0, 1, 2, 1, 0, 3}
	for i, k := range keys {
		if id := in.Intern(k); id != want[i] {
			t.Fatalf("Intern(%q) = %d, want %d", k, id, want[i])
		}
	}
	if in.Len() != 4 {
		t.Fatalf("Len = %d, want 4", in.Len())
	}
	for _, k := range []string{"c", "a", "b", "d"} {
		id, ok := in.Lookup(k)
		if !ok || in.Key(id) != k {
			t.Fatalf("round trip failed for %q", k)
		}
	}
	if _, ok := in.Lookup("never"); ok {
		t.Fatal("Lookup invented a key")
	}
}

func TestInternBytesMatchesIntern(t *testing.T) {
	in := NewInterner()
	a := in.InternBytes([]byte("transcript-1"))
	b := in.Intern("transcript-1")
	if a != b {
		t.Fatalf("InternBytes and Intern disagree: %d vs %d", a, b)
	}
	// A hit through InternBytes must not allocate: the whole point of the
	// byte-slice entry is the alloc-free hot loop.
	key := []byte("transcript-1")
	allocs := testing.AllocsPerRun(100, func() {
		in.InternBytes(key)
	})
	if allocs != 0 {
		t.Fatalf("InternBytes hit allocated %.1f times per run", allocs)
	}
}

func TestInternerKeyPanicsOnUnknownId(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Key on a foreign id did not panic")
		}
	}()
	NewInterner().Key(3)
}

func TestCountsObserveAndTotal(t *testing.T) {
	in := NewInterner()
	c := NewCounts(in)
	c.ObserveKey("x")
	c.ObserveKey("y")
	c.ObserveKey("x")
	c.ObserveBytes([]byte("z"))
	if got := c.Count(in.Intern("x")); got != 2 {
		t.Fatalf("count(x) = %d", got)
	}
	if c.Total() != 4 {
		t.Fatalf("total = %d", c.Total())
	}
	if c.Count(999) != 0 {
		t.Fatal("unknown id has nonzero count")
	}
}

func TestCountsMergeExactAcrossShardings(t *testing.T) {
	// Integer merging must reproduce the sequential tallies bit for bit
	// for every shard split — the property the parallel engines rest on.
	r := rand.New(rand.NewSource(7))
	samples := make([]string, 5000)
	for i := range samples {
		samples[i] = fmt.Sprintf("key-%03d", r.Intn(97))
	}
	seq := NewCounts(NewInterner())
	for _, s := range samples {
		seq.ObserveKey(s)
	}
	for _, shards := range []int{1, 2, 3, 7, 16} {
		parts := make([]*Counts, shards)
		for s := range parts {
			parts[s] = NewCounts(NewInterner())
			lo, hi := s*len(samples)/shards, (s+1)*len(samples)/shards
			for _, k := range samples[lo:hi] {
				parts[s].ObserveKey(k)
			}
		}
		merged := NewCounts(NewInterner())
		for _, p := range parts {
			merged.Merge(p)
		}
		if merged.Total() != seq.Total() {
			t.Fatalf("shards=%d: total %d, want %d", shards, merged.Total(), seq.Total())
		}
		for id := 0; id < seq.Interner().Len(); id++ {
			key := seq.Interner().Key(uint32(id))
			mid, ok := merged.Interner().Lookup(key)
			if !ok || merged.Count(mid) != seq.Count(uint32(id)) {
				t.Fatalf("shards=%d: count(%q) diverged", shards, key)
			}
			// Contiguous shards merged in shard order must also reproduce
			// the sequential id assignment exactly.
			if mid != uint32(id) {
				t.Fatalf("shards=%d: id of %q is %d, want %d", shards, key, mid, id)
			}
		}
	}
}

func TestCountsMergePairedAccumulatorsStayAligned(t *testing.T) {
	// Two Counts sharing one shard interner (the A/B sides of a TV
	// estimate) must keep equal ids for equal keys after merging, even
	// when a key was only ever seen on one side of a shard.
	shardIn := NewInterner()
	ca, cb := NewCounts(shardIn), NewCounts(shardIn)
	ca.ObserveKey("only-a")
	cb.ObserveKey("only-b")
	ca.ObserveKey("both")
	cb.ObserveKey("both")

	merged := NewInterner()
	ma, mb := NewCounts(merged), NewCounts(merged)
	ma.Merge(ca)
	mb.Merge(cb)
	idA, _ := merged.Lookup("only-a")
	idB, _ := merged.Lookup("only-b")
	if ma.Count(idA) != 1 || mb.Count(idA) != 0 {
		t.Fatal("only-a counts wrong after merge")
	}
	if mb.Count(idB) != 1 || ma.Count(idB) != 0 {
		t.Fatal("only-b counts wrong after merge")
	}
}

func TestCountsDistIsCountingConstructor(t *testing.T) {
	in := NewInterner()
	c := NewCounts(in)
	for i := 0; i < 3; i++ {
		c.ObserveKey("a")
	}
	c.ObserveKey("b")
	d := c.Dist(0.25)
	if err := d.Validate(1e-12); err != nil {
		t.Fatal(err)
	}
	if got := d.ProbKey("a"); got != 0.75 {
		t.Fatalf("P(a) = %v", got)
	}
	if got := d.ProbKey("b"); got != 0.25 {
		t.Fatalf("P(b) = %v", got)
	}
}

// randomIntDist builds paired Finite and IntDist representations of the
// same random distribution.
func randomIntDist(r *rand.Rand, in *Interner, support int) (*Finite, *IntDist) {
	f := NewFinite()
	d := NewIntDist(in)
	for i := 0; i < support; i++ {
		key := fmt.Sprintf("outcome-%04d", r.Intn(4*support))
		p := r.Float64()
		f.Add(key, p)
		d.AddKey(key, p)
	}
	return f, d
}

func TestIntTVMatchesSortedMergeTV(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	in := NewInterner()
	fa, da := randomIntDist(r, in, 300)
	fb, db := randomIntDist(r, in, 300)
	want := TV(fa, fb)
	got := IntTV(da, db)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("IntTV = %v, TV = %v", got, want)
	}
	if ft := da.Finite(); math.Abs(TV(ft, fa)) > 1e-12 {
		t.Fatal("IntDist.Finite does not round-trip the masses")
	}
}

func TestIntTVRequiresSharedInterner(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("IntTV across interners did not panic")
		}
	}()
	a := NewIntDist(NewInterner())
	b := NewIntDist(NewInterner())
	a.AddKey("x", 1)
	b.AddKey("x", 1)
	IntTV(a, b)
}

func TestIntDistMergeAcrossInterners(t *testing.T) {
	a := NewIntDist(NewInterner())
	a.AddKey("x", 0.25)
	a.AddKey("y", 0.25)
	b := NewIntDist(NewInterner())
	b.AddKey("y", 0.25)
	b.AddKey("z", 0.25)
	a.Merge(b)
	if err := a.Validate(1e-12); err != nil {
		t.Fatal(err)
	}
	if a.ProbKey("y") != 0.5 || a.ProbKey("z") != 0.25 {
		t.Fatalf("merged masses wrong: y=%v z=%v", a.ProbKey("y"), a.ProbKey("z"))
	}
}

func TestIntDistNormalizeAndLen(t *testing.T) {
	d := NewIntDist(NewInterner())
	d.AddKey("a", 3)
	d.AddKey("b", 1)
	if d.Len() != 2 {
		t.Fatalf("Len = %d", d.Len())
	}
	if err := d.Normalize(); err != nil {
		t.Fatal(err)
	}
	if d.ProbKey("a") != 0.75 {
		t.Fatalf("P(a) = %v after normalize", d.ProbKey("a"))
	}
	empty := NewIntDist(NewInterner())
	if err := empty.Normalize(); err == nil {
		t.Fatal("normalizing zero mass succeeded")
	}
}

func TestIntDistAddRejectsBadMass(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative mass accepted")
		}
	}()
	NewIntDist(NewInterner()).AddKey("x", -0.5)
}

// TestIntDistOf: re-keying a Finite onto an interner preserves every
// mass, assigns ids in sorted-support order (a pure function of
// content, not construction order), and reproduces the sorted-merge TV
// exactly on dyadic masses.
func TestIntDistOf(t *testing.T) {
	a := NewFinite()
	// Deliberately inserted out of sorted order.
	a.Add("c", 8.0/16)
	a.Add("a", 5.0/16)
	a.Add("b", 3.0/16)

	in := NewInterner()
	ai := IntDistOf(a, in)
	for i, want := range []string{"a", "b", "c"} {
		if in.Key(uint32(i)) != want {
			t.Fatalf("id %d = %q, want sorted-support order", i, in.Key(uint32(i)))
		}
	}
	for _, key := range a.Support() {
		if ai.ProbKey(key) != a.Prob(key) {
			t.Fatalf("mass on %q changed: %v vs %v", key, ai.ProbKey(key), a.Prob(key))
		}
	}

	b := NewFinite()
	b.Add("b", 6.0/16)
	b.Add("d", 10.0/16)
	bi := IntDistOf(b, in)
	if got, want := IntTV(ai, bi), TV(a, b); got != want {
		t.Fatalf("IntTV over re-keyed dists = %v, sorted-merge TV = %v", got, want)
	}

	// Construction order must not leak into the ids: re-keying a clone
	// onto a fresh interner lays out a's keys identically.
	in2 := NewInterner()
	IntDistOf(a.Clone(), in2)
	for i := 0; i < in2.Len(); i++ {
		if in2.Key(uint32(i)) != in.Key(uint32(i)) {
			t.Fatalf("clone interner layout differs at id %d: %q vs %q",
				i, in2.Key(uint32(i)), in.Key(uint32(i)))
		}
	}
}
