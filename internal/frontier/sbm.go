package frontier

import (
	"fmt"
	"math"

	"repro/internal/bcast"
	"repro/internal/bitvec"
	"repro/internal/graph"
	"repro/internal/rng"
)

// Stochastic block model: the Discussion section names "finding
// communities in a graph sampled from the stochastic block model" as a
// target for the lower-bound technique. This file provides the two-block
// symmetric SBM sampler and the natural one-wide-round detector, so the
// harness can chart the detection threshold the technique would need to
// explain.

// SBM describes a two-community symmetric stochastic block model: n
// vertices split evenly; within-community edges appear with probability
// PIn, cross-community edges with POut.
type SBM struct {
	// N is the number of vertices (even).
	N int
	// PIn and POut are the within/cross edge probabilities.
	PIn, POut float64
}

// Validate checks the parameters.
func (m SBM) Validate() error {
	if m.N < 2 || m.N%2 != 0 {
		return fmt.Errorf("frontier: SBM needs even n ≥ 2, got %d", m.N)
	}
	for _, p := range []float64{m.PIn, m.POut} {
		if p < 0 || p > 1 {
			return fmt.Errorf("frontier: SBM probability %v outside [0,1]", p)
		}
	}
	return nil
}

// Sample draws a graph and the hidden community assignment (true =
// community 1). Communities are a uniformly random balanced partition.
func (m SBM) Sample(r *rng.Stream) (*graph.Digraph, []bool, error) {
	if err := m.Validate(); err != nil {
		return nil, nil, err
	}
	comm := make([]bool, m.N)
	for _, v := range r.Subset(m.N, m.N/2) {
		comm[v] = true
	}
	g := graph.New(m.N)
	for i := 0; i < m.N; i++ {
		for j := i + 1; j < m.N; j++ {
			p := m.POut
			if comm[i] == comm[j] {
				p = m.PIn
			}
			if r.Bernoulli(p) {
				g.SetEdge(i, j, 1)
				g.SetEdge(j, i, 1)
			}
		}
	}
	return g, comm, nil
}

// SampleNull draws from the matched null model: an Erdős–Rényi graph with
// the SBM's average edge density (so a detector cannot cheat by counting
// edges alone).
func (m SBM) SampleNull(r *rng.Stream) (*graph.Digraph, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	// A balanced two-block SBM has (n/2 choose 2)·2 within-pairs and
	// (n/2)² cross-pairs.
	half := float64(m.N) / 2
	within := half * (half - 1)
	cross := half * half
	avg := (within*m.PIn + cross*m.POut) / (within + cross)
	return graph.SampleGnp(m.N, avg, r), nil
}

// CommunityDetector distinguishes SBM from the density-matched null in
// one wide round: every processor broadcasts its degree; under the SBM
// the degree *variance* is inflated by the bimodal neighbourhood
// structure... for the balanced model degrees are actually homogeneous,
// so the detector instead broadcasts each processor's count of common
// neighbours with processor 0 in a second round — within-community pairs
// share more neighbours (p_in² + p_out² vs 2·p_in·p_out scaled), giving a
// bimodal statistic whose spread the referee thresholds.
type CommunityDetector struct {
	// Model fixes the parameters (used for thresholds).
	Model SBM
}

// Name identifies the detector.
func (d *CommunityDetector) Name() string { return "sbm-common-neighbour-detector" }

// MessageBits is the wide width (counts up to n).
func (d *CommunityDetector) MessageBits() int { return bcast.MessageBitsForN(d.Model.N + 1) }

// Rounds is 1: each processor i broadcasts |N(i) ∩ N(0)| — computable
// because processor i knows its row, and needs row 0... which it does NOT
// have. Instead round 0 has processor 0 broadcast nothing and everyone
// else broadcast the edge bit to 0 — that is 1 bit; then common-neighbour
// counts need row 0 itself. To stay honest to the model the detector runs
// 2 phases: phase 1 = full row broadcast by processor 0 alone over
// ⌈n/w⌉ rounds (others send 0), phase 2 = one round of counts.
func (d *CommunityDetector) Rounds() int {
	w := d.MessageBits()
	return (d.Model.N+w-1)/w + 1
}

// NewNode implements bcast.Protocol.
func (d *CommunityDetector) NewNode(id int, input bitvec.Vector, _ *rng.Stream) bcast.Node {
	return &sbmNode{det: d, id: id, row: input}
}

type sbmNode struct {
	det *CommunityDetector
	id  int
	row bitvec.Vector
}

func (n *sbmNode) Broadcast(t *bcast.Transcript) uint64 {
	w := n.det.MessageBits()
	phase1 := (n.det.Model.N + w - 1) / w
	r := t.CompleteRounds()
	if r < phase1 {
		// Phase 1: only processor 0 speaks, publishing its row.
		if n.id != 0 {
			return 0
		}
		var msg uint64
		for b := 0; b < w; b++ {
			idx := r*w + b
			if idx < n.row.Len() {
				msg |= n.row.Bit(idx) << uint(b)
			}
		}
		return msg
	}
	// Phase 2: broadcast |N(self) ∩ N(0)|.
	row0 := n.reconstructRow0(t)
	common := n.row.And(row0).PopCount()
	maxMsg := int(uint64(1)<<uint(w) - 1)
	if common > maxMsg {
		common = maxMsg
	}
	return uint64(common)
}

func (n *sbmNode) reconstructRow0(t *bcast.Transcript) bitvec.Vector {
	w := n.det.MessageBits()
	phase1 := (n.det.Model.N + w - 1) / w
	row := bitvec.New(n.det.Model.N)
	for r := 0; r < phase1; r++ {
		msg := t.Message(r, 0)
		for b := 0; b < w; b++ {
			idx := r*w + b
			if idx < n.det.Model.N {
				row.SetBit(idx, msg>>uint(b)&1)
			}
		}
	}
	return row
}

// Decide thresholds the spread of the common-neighbour counts: under the
// SBM the counts split into two modes separated by
// n/2·(p_in − p_out)² — detectable once that gap clears the
// O(√(n·p)) binomial noise.
func (d *CommunityDetector) Decide(t *bcast.Transcript) (bool, error) {
	if t.CompleteRounds() < d.Rounds() {
		return false, fmt.Errorf("frontier: SBM detector needs %d rounds, transcript has %d",
			d.Rounds(), t.CompleteRounds())
	}
	last := t.RoundMessages(d.Rounds() - 1)
	// Sample variance of the counts (processor 0 excluded: its count is
	// its own degree and only adds noise).
	mean := 0.0
	for _, c := range last[1:] {
		mean += float64(c)
	}
	mean /= float64(len(last) - 1)
	variance := 0.0
	for _, c := range last[1:] {
		dlt := float64(c) - mean
		variance += dlt * dlt
	}
	variance /= float64(len(last) - 1)

	n := float64(d.Model.N)
	gap := n / 2 * (d.Model.PIn - d.Model.POut) * (d.Model.PIn - d.Model.POut)
	// Null variance of a common-neighbour count is about n·p²(1−p²);
	// bimodality adds (gap/2)². Threshold halfway.
	half := n / 2
	within := half * (half - 1)
	cross := half * half
	avg := (within*d.Model.PIn + cross*d.Model.POut) / (within + cross)
	nullVar := n * avg * avg * (1 - avg*avg)
	return variance >= nullVar+gap*gap/8, nil
}

// MeasureCommunityDetector reports the detector's advantage between the
// SBM and its density-matched null.
func MeasureCommunityDetector(m SBM, trials int, r *rng.Stream) (advantage float64, err error) {
	d := &CommunityDetector{Model: m}
	hitSBM, hitNull := 0, 0
	for i := 0; i < trials; i++ {
		g, _, err := m.Sample(r)
		if err != nil {
			return 0, err
		}
		ok, err := runSBM(d, g, r.Uint64())
		if err != nil {
			return 0, err
		}
		if ok {
			hitSBM++
		}
		g, err = m.SampleNull(r)
		if err != nil {
			return 0, err
		}
		ok, err = runSBM(d, g, r.Uint64())
		if err != nil {
			return 0, err
		}
		if ok {
			hitNull++
		}
	}
	return math.Abs(float64(hitSBM)-float64(hitNull)) / float64(trials), nil
}

func runSBM(d *CommunityDetector, g *graph.Digraph, seed uint64) (bool, error) {
	res, err := bcast.RunRounds(d, rows(g), seed)
	if err != nil {
		return false, err
	}
	return d.Decide(res.Transcript)
}
