package frontier

import (
	"testing"

	"repro/internal/bcast"
	"repro/internal/graph"
	"repro/internal/rng"
)

func TestConnectivityOnDenseGnp(t *testing.T) {
	r := rng.New(1)
	const n = 64
	for trial := 0; trial < 10; trial++ {
		g := graph.SampleGnp(n, 0.3, r)
		_, comps := g.ConnectedComponents()
		got, err := RunConnectivity(g, 8, r.Uint64())
		if err != nil {
			t.Fatal(err)
		}
		if got != (comps == 1) {
			t.Fatalf("protocol said connected=%v, truth has %d components", got, comps)
		}
	}
}

func TestConnectivityOnSparseGnp(t *testing.T) {
	r := rng.New(2)
	const n = 64
	for trial := 0; trial < 10; trial++ {
		g := graph.SampleGnp(n, 0.01, r)
		_, comps := g.ConnectedComponents()
		// Sparse graphs may have larger diameter; give n rounds.
		got, err := RunConnectivity(g, n, r.Uint64())
		if err != nil {
			t.Fatal(err)
		}
		if got != (comps == 1) {
			t.Fatalf("protocol said connected=%v, truth has %d components", got, comps)
		}
	}
}

func TestConnectivityPathNeedsDiameterRounds(t *testing.T) {
	// The path is the worst case: labels flood one hop per round, so
	// n−1 merges are needed; too few rounds must answer "disconnected"
	// (a false negative the round budget knowingly accepts), while n
	// rounds answer correctly.
	const n = 12
	g := graph.PathGraph(n)
	short, err := RunConnectivity(g, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if short {
		t.Fatal("3 rounds cannot flood a diameter-11 path")
	}
	full, err := RunConnectivity(g, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !full {
		t.Fatal("n rounds failed to certify a connected path")
	}
}

func TestConnectivityDisconnected(t *testing.T) {
	// Two cliques with no crossing edges.
	g := graph.New(10)
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if i != j {
				g.SetEdge(i, j, 1)
				g.SetEdge(i+5, j+5, 1)
			}
		}
	}
	got, err := RunConnectivity(g, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Fatal("disconnected graph certified connected")
	}
}

func TestConnectivityIsWideProtocol(t *testing.T) {
	p, err := NewConnectivity(1000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if p.MessageBits() != 10 {
		t.Fatalf("message width %d, want 10 for n=1000", p.MessageBits())
	}
	if _, err := NewConnectivity(0, 5); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := NewConnectivity(5, 0); err == nil {
		t.Fatal("0 rounds accepted")
	}
}

func TestConnectivityEnginesAgree(t *testing.T) {
	r := rng.New(3)
	g := graph.SampleGnp(32, 0.2, r)
	p, err := NewConnectivity(32, 6)
	if err != nil {
		t.Fatal(err)
	}
	a, err := bcast.RunRounds(p, rows(g), 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := bcast.RunConcurrent(p, rows(g), 9)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Transcript.Equal(b.Transcript) {
		t.Fatal("connectivity transcript differs across engines")
	}
}

func TestDecideConnectedNeedsFullRun(t *testing.T) {
	p, err := NewConnectivity(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.DecideConnected(bcast.NewTranscript(8, p.MessageBits())); err == nil {
		t.Fatal("short transcript accepted")
	}
}

func TestFullExchangeReconstructs(t *testing.T) {
	r := rng.New(4)
	for _, wide := range []bool{false, true} {
		g := graph.SampleRand(20, r)
		p := &FullExchangeProtocol{N: 20, Wide: wide}
		res, err := bcast.RunRounds(p, rows(g), 5)
		if err != nil {
			t.Fatal(err)
		}
		got, err := p.Reconstruct(res.Transcript)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(g) {
			t.Fatalf("reconstruction differs from input (wide=%v)", wide)
		}
	}
}

func TestFullExchangeRoundTradeoff(t *testing.T) {
	narrow := &FullExchangeProtocol{N: 64, Wide: false}
	wide := &FullExchangeProtocol{N: 64, Wide: true}
	if narrow.Rounds() != 64 {
		t.Fatalf("narrow rounds %d", narrow.Rounds())
	}
	if wide.Rounds() != 11 { // ceil(64/6); log2(64) width is 6
		t.Fatalf("wide rounds %d", wide.Rounds())
	}
	// Same total bits on the wire up to padding.
	nb := bcast.TotalBitsBroadcast(narrow, 64)
	wb := bcast.TotalBitsBroadcast(wide, 64)
	if wb < nb || wb > nb+6*64 {
		t.Fatalf("bit totals inconsistent: narrow %d, wide %d", nb, wb)
	}
}

func TestFullExchangeReconstructNeedsFullRun(t *testing.T) {
	p := &FullExchangeProtocol{N: 8}
	if _, err := p.Reconstruct(bcast.NewTranscript(8, 1)); err == nil {
		t.Fatal("short transcript accepted")
	}
}

func TestTriangleDetectorStrongAboveRootN(t *testing.T) {
	r := rng.New(5)
	const n, k, trials = 64, 28, 12
	adv, err := MeasureTriangleDetector(n, k, trials, true, r)
	if err != nil {
		t.Fatal(err)
	}
	if adv < 0.8 {
		t.Fatalf("triangle detector advantage %v at k=%d > sqrt(n)", adv, k)
	}
}

func TestTriangleDetectorBlindAtFourthRoot(t *testing.T) {
	r := rng.New(6)
	const n, k, trials = 64, 3, 16
	adv, err := MeasureTriangleDetector(n, k, trials, true, r)
	if err != nil {
		t.Fatal(err)
	}
	if adv > 0.4 {
		t.Fatalf("triangle detector advantage %v at k=n^{1/4}; Theorem 1.1 forbids this", adv)
	}
}

func TestTriangleThresholdFormula(t *testing.T) {
	d := &TriangleDetector{Exchange: FullExchangeProtocol{N: 64}, K: 16}
	// Background = 64·63·62/6/64 = 651; surplus/2 = 16·15·14/6·(63/64)/2.
	want := 64.0*63*62/6/64 + 16.0*15*14/6*(63.0/64)/2
	if got := d.Threshold(); got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("threshold %v, want %v", got, want)
	}
}
