package frontier

import (
	"testing"

	"repro/internal/bcast"
	"repro/internal/bitvec"
	"repro/internal/rng"
)

func TestMSTMatchesPrim(t *testing.T) {
	r := rng.New(1)
	for _, n := range []int{2, 3, 5, 16, 33} {
		wc, err := NewRandomWeights(n, r)
		if err != nil {
			t.Fatal(err)
		}
		got, err := RunMST(wc, r.Uint64())
		if err != nil {
			t.Fatal(err)
		}
		want := wc.ReferenceMST()
		if len(got) != len(want) {
			t.Fatalf("n=%d: protocol found %d edges, Prim %d", n, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("n=%d: edge %d differs: %+v vs %+v", n, i, got[i], want[i])
			}
		}
	}
}

func TestMSTRoundsAreLogN(t *testing.T) {
	r := rng.New(2)
	wc, err := NewRandomWeights(64, r)
	if err != nil {
		t.Fatal(err)
	}
	p := NewMST(wc)
	if p.Rounds() != 6 {
		t.Fatalf("rounds = %d, want log2(64) = 6", p.Rounds())
	}
	// Width = vertex id + weight.
	if p.MessageBits() != bcast.MessageBitsForN(64)+wc.WeightBits() {
		t.Fatalf("width = %d", p.MessageBits())
	}
}

func TestMSTAllNodesAgreeOnSpanningLabel(t *testing.T) {
	r := rng.New(3)
	wc, err := NewRandomWeights(20, r)
	if err != nil {
		t.Fatal(err)
	}
	p := NewMST(wc)
	inputs := make([]bitvec.Vector, 20)
	for i := range inputs {
		inputs[i] = wc.Row(i)
	}
	res, err := bcast.RunRounds(p, inputs, 7)
	if err != nil {
		t.Fatal(err)
	}
	outs := res.Outputs()
	for i := 1; i < 20; i++ {
		if !outs[i].Equal(outs[0]) {
			t.Fatalf("node %d final component label differs — tree did not span", i)
		}
	}
}

func TestMSTTreeIsSpanningAndAcyclic(t *testing.T) {
	r := rng.New(4)
	wc, err := NewRandomWeights(40, r)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := RunMST(wc, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(tree) != 39 {
		t.Fatalf("tree has %d edges, want n-1 = 39", len(tree))
	}
	// Union-find check: n-1 edges with no cycle span the graph.
	parent := make([]int, 40)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range tree {
		ru, rv := find(e.U), find(e.V)
		if ru == rv {
			t.Fatalf("edge %+v creates a cycle", e)
		}
		parent[ru] = rv
	}
}

func TestMSTWeightsDistinct(t *testing.T) {
	r := rng.New(5)
	wc, err := NewRandomWeights(12, r)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint64]bool)
	for i := 0; i < 12; i++ {
		for j := i + 1; j < 12; j++ {
			w := wc.Weight(i, j)
			if w == 0 {
				t.Fatal("zero weight collides with the sentinel")
			}
			if seen[w] {
				t.Fatalf("duplicate weight %d", w)
			}
			seen[w] = true
			if wc.Weight(j, i) != w {
				t.Fatal("weights not symmetric")
			}
		}
	}
}

func TestMSTConcurrentEngineAgrees(t *testing.T) {
	r := rng.New(6)
	wc, err := NewRandomWeights(16, r)
	if err != nil {
		t.Fatal(err)
	}
	p := NewMST(wc)
	inputs := make([]bitvec.Vector, 16)
	for i := range inputs {
		inputs[i] = wc.Row(i)
	}
	a, err := bcast.RunRounds(p, inputs, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := bcast.RunConcurrent(p, inputs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Transcript.Equal(b.Transcript) {
		t.Fatal("MST transcript differs across engines")
	}
}

func TestNewRandomWeightsValidates(t *testing.T) {
	if _, err := NewRandomWeights(1, rng.New(1)); err == nil {
		t.Fatal("n=1 accepted")
	}
}
