// Package frontier implements protocols for the open problems the paper's
// Discussion section proposes as next targets for the lower-bound
// technique: graph connectivity, triangle counting, and the undirected
// planted-clique variant. None of these has a proven average-case
// BCAST(1) bound in the paper; the package provides the natural upper-bound
// protocols so the experiment harness can chart where they start to
// succeed — the empirical frontier the technique would have to push past.
package frontier

import (
	"fmt"

	"repro/internal/bcast"
	"repro/internal/bitvec"
	"repro/internal/graph"
	"repro/internal/rng"
)

// ConnectivityProtocol decides connectivity of the input graph's
// undirected support by label propagation in BCAST(log n): every round
// each processor broadcasts its current component label (initially its own
// id) and adopts the minimum label among itself and its neighbours. After
// r rounds labels have propagated r hops, so diameter-many rounds reach a
// fixpoint; on G(n, 1/2) inputs the diameter is 2 with overwhelming
// probability and O(log n) rounds are ample. The verdict (all labels
// equal) is computable by every processor from the final round.
type ConnectivityProtocol struct {
	// N is the number of processors/vertices.
	N int
	// PropagationRounds is the number of label-propagation rounds.
	PropagationRounds int
}

var _ bcast.Protocol = (*ConnectivityProtocol)(nil)

// NewConnectivity returns the protocol with the given round budget.
func NewConnectivity(n, rounds int) (*ConnectivityProtocol, error) {
	if n < 1 || rounds < 1 {
		return nil, fmt.Errorf("frontier: invalid connectivity parameters n=%d rounds=%d", n, rounds)
	}
	return &ConnectivityProtocol{N: n, PropagationRounds: rounds}, nil
}

// Name implements bcast.Protocol.
func (p *ConnectivityProtocol) Name() string {
	return fmt.Sprintf("connectivity(rounds=%d)", p.PropagationRounds)
}

// MessageBits implements bcast.Protocol: labels are vertex ids,
// ⌈log₂ n⌉ bits — this is a BCAST(log n) protocol.
func (p *ConnectivityProtocol) MessageBits() int { return bcast.MessageBitsForN(p.N) }

// Rounds implements bcast.Protocol.
func (p *ConnectivityProtocol) Rounds() int { return p.PropagationRounds }

// NewNode implements bcast.Protocol. The input is the processor's
// adjacency row.
func (p *ConnectivityProtocol) NewNode(id int, input bitvec.Vector, _ *rng.Stream) bcast.Node {
	return &connNode{proto: p, id: id, row: input, label: uint64(id)}
}

type connNode struct {
	proto *ConnectivityProtocol
	id    int
	row   bitvec.Vector
	label uint64
}

// Broadcast emits the current label, after folding in the previous
// round's neighbour labels. Inputs must be symmetric (undirected graphs in
// directed representation): a processor only sees its own row, so min
// labels flood one hop per round exactly when every edge is visible from
// both endpoints. Round r's broadcast therefore reflects r merge steps,
// and PropagationRounds ≥ diameter + 1 guarantees a fixpoint.
func (n *connNode) Broadcast(t *bcast.Transcript) uint64 {
	r := t.CompleteRounds()
	if r > 0 {
		prev := t.RoundMessages(r - 1)
		for j, lbl := range prev {
			if j != n.id && n.row.Bit(j) == 1 && lbl < n.label {
				n.label = lbl
			}
		}
	}
	return n.label
}

// Output implements bcast.Outputter: the final label as a bit vector.
func (n *connNode) Output(t *bcast.Transcript) bitvec.Vector {
	return bitvec.FromUint64(n.proto.MessageBits(), n.label)
}

// DecideConnected reads the verdict from the final round: connected iff
// all broadcast labels coincide.
func (p *ConnectivityProtocol) DecideConnected(t *bcast.Transcript) (bool, error) {
	if t.CompleteRounds() < p.Rounds() {
		return false, fmt.Errorf("frontier: connectivity needs %d rounds, transcript has %d",
			p.Rounds(), t.CompleteRounds())
	}
	last := t.RoundMessages(p.Rounds() - 1)
	for _, lbl := range last {
		if lbl != last[0] {
			return false, nil
		}
	}
	return true, nil
}

// RunConnectivity executes the protocol on a graph.
func RunConnectivity(g *graph.Digraph, rounds int, seed uint64) (connected bool, err error) {
	p, err := NewConnectivity(g.N(), rounds)
	if err != nil {
		return false, err
	}
	inputs := rows(g)
	res, err := bcast.RunRounds(p, inputs, seed)
	if err != nil {
		return false, err
	}
	return p.DecideConnected(res.Transcript)
}

func rows(g *graph.Digraph) []bitvec.Vector {
	out := make([]bitvec.Vector, g.N())
	for i := range out {
		out[i] = g.Row(i)
	}
	return out
}
