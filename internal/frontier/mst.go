package frontier

import (
	"fmt"
	"sort"

	"repro/internal/bcast"
	"repro/internal/bitvec"
	"repro/internal/rng"
)

// Minimum spanning tree on a complete weighted graph — another workload
// from the Discussion section ("constructing an MST on a complete graph
// with random weights"). The protocol is Borůvka in the broadcast clique:
// in each phase every processor broadcasts its minimum-weight edge leaving
// its current component (⌈log₂n⌉ + weightBits bits); every processor then
// performs the identical merge locally, since the transcript is shared.
// Components at least halve per phase, so ⌈log₂n⌉ phases suffice — an
// O(log n)-round BCAST(log n + log W) protocol.

// WeightedClique is a complete undirected graph with distinct edge
// weights; processor i's private input is row i of the weight matrix.
type WeightedClique struct {
	n       int
	weights [][]uint64 // symmetric, diagonal unused
	bits    int        // width of one weight
}

// NewRandomWeights builds a complete graph on n vertices whose C(n,2)
// edges carry a uniformly random permutation of 1..C(n,2) — distinct
// weights, so the MST is unique and tests can compare edge sets exactly.
func NewRandomWeights(n int, r *rng.Stream) (*WeightedClique, error) {
	if n < 2 {
		return nil, fmt.Errorf("frontier: weighted clique needs n >= 2, got %d", n)
	}
	edges := n * (n - 1) / 2
	perm := r.Perm(edges)
	bits := 1
	for 1<<uint(bits) <= edges {
		bits++
	}
	w := make([][]uint64, n)
	for i := range w {
		w[i] = make([]uint64, n)
	}
	idx := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			weight := uint64(perm[idx] + 1)
			idx++
			w[i][j] = weight
			w[j][i] = weight
		}
	}
	return &WeightedClique{n: n, weights: w, bits: bits}, nil
}

// N returns the vertex count.
func (wc *WeightedClique) N() int { return wc.n }

// WeightBits returns the per-weight bit width.
func (wc *WeightedClique) WeightBits() int { return wc.bits }

// Weight returns w(i, j).
func (wc *WeightedClique) Weight(i, j int) uint64 { return wc.weights[i][j] }

// Row encodes processor i's input: n fixed-width weights, little-endian
// per weight, position j at offset j·WeightBits.
func (wc *WeightedClique) Row(i int) bitvec.Vector {
	row := bitvec.New(wc.n * wc.bits)
	for j := 0; j < wc.n; j++ {
		for b := 0; b < wc.bits; b++ {
			row.SetBit(j*wc.bits+b, wc.weights[i][j]>>uint(b)&1)
		}
	}
	return row
}

// MSTEdge is one tree edge with endpoints ordered u < v.
type MSTEdge struct {
	U, V   int
	Weight uint64
}

// ReferenceMST computes the unique MST centrally (Prim), for validation.
func (wc *WeightedClique) ReferenceMST() []MSTEdge {
	inTree := make([]bool, wc.n)
	bestW := make([]uint64, wc.n)
	bestTo := make([]int, wc.n)
	for i := range bestW {
		bestW[i] = ^uint64(0)
		bestTo[i] = -1
	}
	inTree[0] = true
	for j := 1; j < wc.n; j++ {
		bestW[j] = wc.weights[0][j]
		bestTo[j] = 0
	}
	var out []MSTEdge
	for len(out) < wc.n-1 {
		pick, pw := -1, ^uint64(0)
		for j := 0; j < wc.n; j++ {
			if !inTree[j] && bestW[j] < pw {
				pick, pw = j, bestW[j]
			}
		}
		u, v := bestTo[pick], pick
		if u > v {
			u, v = v, u
		}
		out = append(out, MSTEdge{U: u, V: v, Weight: pw})
		inTree[pick] = true
		for j := 0; j < wc.n; j++ {
			if !inTree[j] && wc.weights[pick][j] < bestW[j] {
				bestW[j] = wc.weights[pick][j]
				bestTo[j] = pick
			}
		}
	}
	sortEdges(out)
	return out
}

func sortEdges(es []MSTEdge) {
	sort.Slice(es, func(a, b int) bool {
		if es[a].U != es[b].U {
			return es[a].U < es[b].U
		}
		return es[a].V < es[b].V
	})
}

// MSTProtocol runs Borůvka over the broadcast clique.
type MSTProtocol struct {
	// N is the number of processors, WeightBits the weight width.
	N, WeightBits int
}

var _ bcast.Protocol = (*MSTProtocol)(nil)

// NewMST builds the protocol for a weighted clique's parameters.
func NewMST(wc *WeightedClique) *MSTProtocol {
	return &MSTProtocol{N: wc.N(), WeightBits: wc.WeightBits()}
}

// Name implements bcast.Protocol.
func (p *MSTProtocol) Name() string { return fmt.Sprintf("boruvka-mst(n=%d)", p.N) }

// MessageBits implements bcast.Protocol: a target id plus a weight.
func (p *MSTProtocol) MessageBits() int { return bcast.MessageBitsForN(p.N) + p.WeightBits }

// Rounds implements bcast.Protocol: ⌈log₂ n⌉ Borůvka phases.
func (p *MSTProtocol) Rounds() int { return bcast.MessageBitsForN(p.N) }

// NewNode implements bcast.Protocol.
func (p *MSTProtocol) NewNode(id int, input bitvec.Vector, _ *rng.Stream) bcast.Node {
	return &mstNode{proto: p, id: id, row: input}
}

type mstNode struct {
	proto *MSTProtocol
	id    int
	row   bitvec.Vector
}

// weightTo decodes w(id, j) from the input row.
func (n *mstNode) weightTo(j int) uint64 {
	var w uint64
	for b := 0; b < n.proto.WeightBits; b++ {
		w |= n.row.Bit(j*n.proto.WeightBits+b) << uint(b)
	}
	return w
}

// Broadcast emits this phase's candidate edge: the minimum-weight edge to
// a vertex outside the node's current component, encoded target-low.
// A node whose component already spans everything emits the sentinel 0
// weight (weights are ≥ 1, so 0 is unambiguous).
func (n *mstNode) Broadcast(t *bcast.Transcript) uint64 {
	labels, _ := ReplayMerges(t, n.proto)
	bestJ, bestW := -1, ^uint64(0)
	for j := 0; j < n.proto.N; j++ {
		if labels[j] == labels[n.id] {
			continue
		}
		if w := n.weightTo(j); w < bestW {
			bestJ, bestW = j, w
		}
	}
	if bestJ < 0 {
		return 0
	}
	return uint64(bestJ) | bestW<<uint(bcast.MessageBitsForN(n.proto.N))
}

// Output implements bcast.Outputter: the final component label (all equal
// when the tree spans).
func (n *mstNode) Output(t *bcast.Transcript) bitvec.Vector {
	labels, _ := ReplayMerges(t, n.proto)
	return bitvec.FromUint64(bcast.MessageBitsForN(n.proto.N), uint64(labels[n.id]))
}

// ReplayMerges deterministically reconstructs component labels and the
// accepted tree edges from a transcript prefix — the computation every
// processor performs locally after each phase.
func ReplayMerges(t *bcast.Transcript, p *MSTProtocol) (labels []int, tree []MSTEdge) {
	labels = make([]int, p.N)
	for i := range labels {
		labels[i] = i
	}
	idBits := uint(bcast.MessageBitsForN(p.N))
	idMask := uint64(1)<<idBits - 1
	for round := 0; round < t.CompleteRounds(); round++ {
		// Collect each component's minimum candidate.
		type cand struct {
			from, to int
			w        uint64
		}
		best := make(map[int]cand, p.N)
		for i := 0; i < p.N; i++ {
			msg := t.Message(round, i)
			w := msg >> idBits
			if w == 0 {
				continue // sentinel: no outgoing edge
			}
			to := int(msg & idMask)
			c := labels[i]
			if cur, ok := best[c]; !ok || w < cur.w {
				best[c] = cand{from: i, to: to, w: w}
			}
		}
		// Merge deterministically in component order.
		comps := make([]int, 0, len(best))
		for c := range best {
			comps = append(comps, c)
		}
		sort.Ints(comps)
		for _, c := range comps {
			e := best[c]
			lf, lt := labels[e.from], labels[e.to]
			if lf == lt {
				continue // both sides already merged this phase
			}
			u, v := e.from, e.to
			if u > v {
				u, v = v, u
			}
			tree = append(tree, MSTEdge{U: u, V: v, Weight: e.w})
			lo, hi := lf, lt
			if lo > hi {
				lo, hi = hi, lo
			}
			for i := range labels {
				if labels[i] == hi {
					labels[i] = lo
				}
			}
		}
	}
	sortEdges(tree)
	return labels, tree
}

// RunMST executes the protocol and returns the tree every processor
// agrees on.
func RunMST(wc *WeightedClique, seed uint64) ([]MSTEdge, error) {
	p := NewMST(wc)
	inputs := make([]bitvec.Vector, wc.N())
	for i := range inputs {
		inputs[i] = wc.Row(i)
	}
	res, err := bcast.RunRounds(p, inputs, seed)
	if err != nil {
		return nil, err
	}
	_, tree := ReplayMerges(res.Transcript, p)
	return tree, nil
}
