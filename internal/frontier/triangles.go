package frontier

import (
	"fmt"

	"repro/internal/bcast"
	"repro/internal/bitvec"
	"repro/internal/graph"
	"repro/internal/rng"
)

// FullExchangeProtocol is the full-information baseline of the model:
// over ⌈n/w⌉ rounds (w = message width) every processor broadcasts its
// entire adjacency row, after which each processor knows the whole graph
// and can compute anything locally. It is the upper bound every
// lower-bound question in the Discussion is measured against — triangle
// counting, MST, diameter, and connectivity all cost at most n/w rounds
// this way.
type FullExchangeProtocol struct {
	// N is the number of processors/vertices.
	N int
	// Wide selects BCAST(log n) messages (⌈log₂n⌉ bits) instead of
	// BCAST(1), cutting rounds by the same factor — the paper's footnote 1
	// tradeoff made concrete.
	Wide bool
}

var _ bcast.Protocol = (*FullExchangeProtocol)(nil)

// Name implements bcast.Protocol.
func (p *FullExchangeProtocol) Name() string {
	if p.Wide {
		return "full-exchange(BCAST(log n))"
	}
	return "full-exchange(BCAST(1))"
}

// MessageBits implements bcast.Protocol.
func (p *FullExchangeProtocol) MessageBits() int {
	if p.Wide {
		return bcast.MessageBitsForN(p.N)
	}
	return 1
}

// Rounds implements bcast.Protocol: ⌈n / width⌉.
func (p *FullExchangeProtocol) Rounds() int {
	w := p.MessageBits()
	return (p.N + w - 1) / w
}

// NewNode implements bcast.Protocol: round r broadcasts bits
// [r·w, (r+1)·w) of the processor's row, packed little-endian.
func (p *FullExchangeProtocol) NewNode(_ int, input bitvec.Vector, _ *rng.Stream) bcast.Node {
	w := p.MessageBits()
	return bcast.NodeFunc(func(t *bcast.Transcript) uint64 {
		r := t.CompleteRounds()
		var msg uint64
		for b := 0; b < w; b++ {
			idx := r*w + b
			if idx < input.Len() {
				msg |= input.Bit(idx) << uint(b)
			}
		}
		return msg
	})
}

// Reconstruct rebuilds the full graph from a finished transcript. Every
// processor performs exactly this computation locally, so whatever is
// decided from the result is a legitimate protocol output.
func (p *FullExchangeProtocol) Reconstruct(t *bcast.Transcript) (*graph.Digraph, error) {
	if t.CompleteRounds() < p.Rounds() {
		return nil, fmt.Errorf("frontier: full exchange needs %d rounds, transcript has %d",
			p.Rounds(), t.CompleteRounds())
	}
	w := p.MessageBits()
	g := graph.New(p.N)
	for i := 0; i < p.N; i++ {
		row := bitvec.New(p.N)
		for r := 0; r < p.Rounds(); r++ {
			msg := t.Message(r, i)
			for b := 0; b < w; b++ {
				idx := r*w + b
				if idx < p.N {
					row.SetBit(idx, msg>>uint(b)&1)
				}
			}
		}
		g.SetRow(i, row)
	}
	return g, nil
}

// TriangleDetector decides planted-vs-random by the global (mutual)
// triangle count after a full exchange: a planted k-clique adds Θ(k³)
// triangles on top of the Binomial(n³/6, 1/64)-distributed background, so
// the statistic separates once k³ ≫ n^{1.5} — i.e. k ≳ √n, the same
// threshold as degree counting but through a different lens. Below n^{1/4}
// it is blind, as Theorem 1.1 demands of every protocol.
type TriangleDetector struct {
	// Exchange is the underlying full-information protocol.
	Exchange FullExchangeProtocol
	// K is the clique-size hypothesis setting the decision threshold.
	K int
}

// Name identifies the detector.
func (d *TriangleDetector) Name() string {
	return fmt.Sprintf("triangle-detector(k=%d)", d.K)
}

// Threshold returns the acceptance cutoff: the background mean
// C(n,3)/64·... — for mutual triangles each unordered triple needs 6
// directed edges, probability 2^{−6} — plus half the planted surplus
// C(k,3)·(1 − 2^{−6}).
func (d *TriangleDetector) Threshold() float64 {
	n := float64(d.Exchange.N)
	k := float64(d.K)
	background := n * (n - 1) * (n - 2) / 6 / 64
	surplus := k * (k - 1) * (k - 2) / 6 * (1 - 1.0/64)
	return background + surplus/2
}

// Decide runs the statistic on a finished full-exchange transcript.
func (d *TriangleDetector) Decide(t *bcast.Transcript) (bool, error) {
	g, err := d.Exchange.Reconstruct(t)
	if err != nil {
		return false, err
	}
	return float64(g.CountTriangles()) >= d.Threshold(), nil
}

// MeasureTriangleDetector reports the detector's advantage over planted
// and random inputs at the given parameters.
func MeasureTriangleDetector(n, k, trials int, wide bool, r *rng.Stream) (advantage float64, err error) {
	d := &TriangleDetector{Exchange: FullExchangeProtocol{N: n, Wide: wide}, K: k}
	planted, random := 0, 0
	for i := 0; i < trials; i++ {
		g, _, err := graph.SamplePlanted(n, k, r)
		if err != nil {
			return 0, err
		}
		ok, err := runTriangle(d, g, r.Uint64())
		if err != nil {
			return 0, err
		}
		if ok {
			planted++
		}
		ok, err = runTriangle(d, graph.SampleRand(n, r), r.Uint64())
		if err != nil {
			return 0, err
		}
		if ok {
			random++
		}
	}
	adv := float64(planted-random) / float64(trials)
	if adv < 0 {
		adv = -adv
	}
	return adv, nil
}

func runTriangle(d *TriangleDetector, g *graph.Digraph, seed uint64) (bool, error) {
	res, err := bcast.RunRounds(&d.Exchange, rows(g), seed)
	if err != nil {
		return false, err
	}
	return d.Decide(res.Transcript)
}
