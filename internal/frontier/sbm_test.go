package frontier

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestSBMValidate(t *testing.T) {
	if err := (SBM{N: 7, PIn: 0.5, POut: 0.5}).Validate(); err == nil {
		t.Fatal("odd n accepted")
	}
	if err := (SBM{N: 8, PIn: 1.5, POut: 0.5}).Validate(); err == nil {
		t.Fatal("p > 1 accepted")
	}
	if err := (SBM{N: 8, PIn: 0.8, POut: 0.2}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSBMSampleBalancedCommunities(t *testing.T) {
	r := rng.New(1)
	m := SBM{N: 40, PIn: 0.8, POut: 0.2}
	g, comm, err := m.Sample(r)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsSymmetric() {
		t.Fatal("SBM graph not symmetric")
	}
	ones := 0
	for _, c := range comm {
		if c {
			ones++
		}
	}
	if ones != 20 {
		t.Fatalf("community sizes %d/%d, want balanced", ones, 40-ones)
	}
}

func TestSBMEdgeDensities(t *testing.T) {
	r := rng.New(2)
	m := SBM{N: 60, PIn: 0.9, POut: 0.1}
	within, cross := 0, 0
	withinTot, crossTot := 0, 0
	const trials = 10
	for trial := 0; trial < trials; trial++ {
		g, comm, err := m.Sample(r)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < m.N; i++ {
			for j := i + 1; j < m.N; j++ {
				if comm[i] == comm[j] {
					withinTot++
					if g.HasEdge(i, j) {
						within++
					}
				} else {
					crossTot++
					if g.HasEdge(i, j) {
						cross++
					}
				}
			}
		}
	}
	if rate := float64(within) / float64(withinTot); math.Abs(rate-0.9) > 0.03 {
		t.Fatalf("within-community rate %v, want 0.9", rate)
	}
	if rate := float64(cross) / float64(crossTot); math.Abs(rate-0.1) > 0.03 {
		t.Fatalf("cross-community rate %v, want 0.1", rate)
	}
}

func TestSBMNullMatchesDensity(t *testing.T) {
	r := rng.New(3)
	m := SBM{N: 60, PIn: 0.7, POut: 0.3}
	var sbmEdges, nullEdges float64
	const trials = 15
	for trial := 0; trial < trials; trial++ {
		g, _, err := m.Sample(r)
		if err != nil {
			t.Fatal(err)
		}
		sbmEdges += float64(g.EdgeCount())
		g, err = m.SampleNull(r)
		if err != nil {
			t.Fatal(err)
		}
		nullEdges += float64(g.EdgeCount())
	}
	if math.Abs(sbmEdges-nullEdges)/sbmEdges > 0.05 {
		t.Fatalf("null density mismatched: SBM %v vs null %v edges", sbmEdges/trials, nullEdges/trials)
	}
}

func TestCommunityDetectorStrongSeparation(t *testing.T) {
	r := rng.New(4)
	m := SBM{N: 64, PIn: 0.9, POut: 0.1}
	adv, err := MeasureCommunityDetector(m, 15, r)
	if err != nil {
		t.Fatal(err)
	}
	if adv < 0.8 {
		t.Fatalf("detector advantage %v on a strongly separated SBM", adv)
	}
}

func TestCommunityDetectorBlindWithoutSeparation(t *testing.T) {
	// p_in = p_out: the SBM *is* the null; advantage must vanish.
	r := rng.New(5)
	m := SBM{N: 64, PIn: 0.5, POut: 0.5}
	adv, err := MeasureCommunityDetector(m, 20, r)
	if err != nil {
		t.Fatal(err)
	}
	if adv > 0.3 {
		t.Fatalf("detector advantage %v with identical blocks — impossible signal", adv)
	}
}

func TestCommunityDetectorRoundBudget(t *testing.T) {
	d := &CommunityDetector{Model: SBM{N: 64, PIn: 0.8, POut: 0.2}}
	// Phase 1: ceil(64/7) = 10 rounds (width for n+1=65 is 7); phase 2: 1.
	if d.MessageBits() != 7 {
		t.Fatalf("width %d", d.MessageBits())
	}
	if d.Rounds() != 11 {
		t.Fatalf("rounds %d", d.Rounds())
	}
}
