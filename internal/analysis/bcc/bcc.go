// Package bcc holds the pieces every bcclint analyzer shares: the
// repo-relative package gating that scopes an analyzer to the packages
// whose contract it mechanizes, the test-file filter, and the
// //bcclint:allow escape hatch.
//
// # The escape hatch
//
// A diagnostic is suppressed by an allow directive on the same line as
// the offending node or alone on the line directly above it:
//
//	//bcclint:allow(detpure) Wall is operator-facing and never enters a table
//	start := time.Now()
//
// The parenthesized list names the analyzers being waived (one or
// several, comma-separated). The text after the closing parenthesis is
// the reason and is mandatory: an allow directive with no reason is
// itself reported by every analyzer it names, so the tree can hold
// zero unexplained waivers. Directives naming other analyzers are
// inert for this one — a waiver is always per-contract, never blanket.
package bcc

import (
	"go/ast"
	"go/token"
	"strings"

	"repro/internal/xtools/go/analysis"
)

// Prefix is the directive prefix, after the "//" of a line comment.
const Prefix = "bcclint:allow("

// PathMatches reports whether pkgpath is one of the repo-relative
// package paths in names (each like "internal/dist"): either the
// in-repo spelling "repro/<name>" or any import path ending in
// "/<name>". The suffix form is what lets the CI self-check module —
// a separate module with its own path — still trip the analyzers.
func PathMatches(pkgpath string, names ...string) bool {
	for _, n := range names {
		if pkgpath == "repro/"+n || strings.HasSuffix(pkgpath, "/"+n) {
			return true
		}
	}
	return false
}

// IsTestFile reports whether the file containing pos is a _test.go
// file. The determinism and degradation contracts govern production
// compute and serving paths; tests legitimately use wall clocks,
// context.Background, and reference math/rand implementations.
func IsTestFile(pass *analysis.Pass, pos token.Pos) bool {
	f := pass.Fset.File(pos)
	return f != nil && strings.HasSuffix(f.Name(), "_test.go")
}

// Allower indexes the //bcclint:allow directives of a package for one
// analyzer and remembers which source lines they waive.
type Allower struct {
	pass  *analysis.Pass
	lines map[string]map[int]bool // filename -> waived line set
}

// NewAllower scans every file of the pass for allow directives naming
// pass.Analyzer and reports the ones that carry no reason. It must be
// called before the analyzer's package gate so a reasonless directive
// anywhere in the tree fails the run, not only in covered packages.
func NewAllower(pass *analysis.Pass) *Allower {
	a := &Allower{pass: pass, lines: map[string]map[int]bool{}}
	name := pass.Analyzer.Name
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, reason, ok := parseDirective(c.Text)
				if !ok || !contains(names, name) {
					continue
				}
				if reason == "" {
					pass.Reportf(c.Pos(), "bcclint:allow(%s) needs a reason after the closing parenthesis", name)
					continue
				}
				pos := pass.Fset.Position(c.Pos())
				m := a.lines[pos.Filename]
				if m == nil {
					m = map[int]bool{}
					a.lines[pos.Filename] = m
				}
				m[pos.Line] = true
			}
		}
	}
	return a
}

// Allowed reports whether a diagnostic at pos is waived: a reasoned
// directive sits on the same line or on the line directly above.
func (a *Allower) Allowed(pos token.Pos) bool {
	p := a.pass.Fset.Position(pos)
	m := a.lines[p.Filename]
	return m != nil && (m[p.Line] || m[p.Line-1])
}

// Reportf reports a diagnostic unless an allow directive waives it.
func (a *Allower) Reportf(pos token.Pos, format string, args ...any) {
	if a.Allowed(pos) {
		return
	}
	a.pass.Reportf(pos, format, args...)
}

// parseDirective parses "//bcclint:allow(name1,name2) reason". The
// block form "/*bcclint:allow(name) reason*/" is accepted too, for the
// rare line that must carry another trailing comment.
func parseDirective(text string) (names []string, reason string, ok bool) {
	body, found := strings.CutPrefix(text, "//")
	if !found {
		if body, found = strings.CutPrefix(text, "/*"); !found {
			return nil, "", false
		}
		body = strings.TrimSuffix(body, "*/")
	}
	body = strings.TrimLeft(body, " \t")
	body, found = strings.CutPrefix(body, Prefix)
	if !found {
		return nil, "", false
	}
	list, rest, found := strings.Cut(body, ")")
	if !found {
		return nil, "", false
	}
	for _, n := range strings.Split(list, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names, strings.TrimSpace(rest), true
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

// DeclaredWithin reports whether the object behind id was declared inside
// the source range [lo, hi) — the closure-locality test the shard
// discipline analyzer runs on every written variable.
func DeclaredWithin(pass *analysis.Pass, id *ast.Ident, lo, hi token.Pos) bool {
	obj := pass.TypesInfo.ObjectOf(id)
	if obj == nil {
		return false
	}
	return obj.Pos() >= lo && obj.Pos() < hi
}
