// Package ctxflow mechanizes the context-threading contract of the
// serving plane (serve, sched, store and its tiers, fleet, sweep):
// every outbound wait — a Backend.Get, an ObjectClient round trip, an
// HTTP request to a peer or owner — must be bounded by the
// context.Context of the request that caused it, threaded down from an
// enclosing parameter. Minting a fresh root context at the call site
// severs that chain: a hung dependency then stalls past the serving
// timeout and a disconnected client keeps burning compute.
//
// The analyzer flags the two ways the chain gets severed:
//
//   - context.Background() / context.TODO() anywhere in a covered
//     non-test file. The rare legitimate roots (a flight whose
//     lifetime is deliberately decoupled from any single caller, a
//     write-through that must survive the request that triggered it)
//     carry a reasoned //bcclint:allow(ctxflow) directive;
//   - context-free HTTP entry points (http.NewRequest, http.Get,
//     client.Get/Head/Post/PostForm) — use NewRequestWithContext and
//     Client.Do so the request carries the caller's context.
package ctxflow

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis/bcc"
	"repro/internal/xtools/go/analysis"
)

// coveredPkgs are the serving-plane packages where every outbound call
// happens on behalf of a request.
var coveredPkgs = []string{
	"internal/serve",
	"internal/sched",
	"internal/store",
	"internal/store/memlru",
	"internal/store/objstore",
	"internal/store/remote",
	"internal/store/tier",
	"internal/fleet",
	"internal/sweep",
}

// ctxFreeHTTP are the net/http entry points that build or send a
// request with no context attached.
var ctxFreeHTTP = map[string]string{
	"NewRequest": "http.NewRequestWithContext",
	"Get":        "http.NewRequestWithContext + Client.Do",
	"Head":       "http.NewRequestWithContext + Client.Do",
	"Post":       "http.NewRequestWithContext + Client.Do",
	"PostForm":   "http.NewRequestWithContext + Client.Do",
}

var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "require serving-plane lookups and outbound HTTP to thread the " +
		"request context from an enclosing parameter, never a fresh root context",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	allow := bcc.NewAllower(pass)
	if !bcc.PathMatches(pass.Pkg.Path(), coveredPkgs...) {
		return nil, nil
	}
	for _, f := range pass.Files {
		if bcc.IsTestFile(pass, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "context":
				switch fn.Name() {
				case "Background":
					allow.Reportf(call.Pos(),
						"context.Background() on the serving plane severs the request context; thread the ctx parameter down instead")
				case "TODO":
					allow.Reportf(call.Pos(),
						"context.TODO() on the serving plane: thread the request context from an enclosing parameter")
				}
			case "net/http":
				want, bad := ctxFreeHTTP[fn.Name()]
				if !bad {
					return true
				}
				sig := fn.Type().(*types.Signature)
				if sig.Recv() != nil && !isHTTPClient(sig.Recv().Type()) {
					return true
				}
				allow.Reportf(call.Pos(),
					"%s sends a request with no context; use %s so the round trip is bounded by the caller's deadline",
					fn.Name(), want)
			}
			return true
		})
	}
	return nil, nil
}

func isHTTPClient(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Client" && obj.Pkg() != nil && obj.Pkg().Path() == "net/http"
}
