// Package experiments is a ctxflow fixture for the package gate: the
// measurement engines are not on the serving plane, and their batch
// entry points legitimately root their own contexts.
package experiments

import "context"

func uncovered() context.Context {
	return context.Background()
}
