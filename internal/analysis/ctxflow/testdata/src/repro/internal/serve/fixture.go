// Package serve is a ctxflow fixture: a serving-plane package where
// every outbound wait must ride the request context.
package serve

import (
	"context"
	"net/http"
)

func roots(ctx context.Context) {
	_ = context.Background() // want `context\.Background\(\) on the serving plane`
	_ = context.TODO()       // want `context\.TODO\(\) on the serving plane`

	// Deriving from the threaded parameter is the contract.
	c, cancel := context.WithCancel(ctx)
	defer cancel()
	_ = c

	//bcclint:allow(ctxflow) a flight outlives any one caller by design
	_ = context.Background()

	_ = context.Background() /*bcclint:allow(ctxflow)*/ // want `bcclint:allow\(ctxflow\) needs a reason` `context\.Background\(\) on the serving plane`
}

func outbound(ctx context.Context, client *http.Client) error {
	req, err := http.NewRequest(http.MethodGet, "http://peer/tables/E1", nil) // want `NewRequest sends a request with no context`
	if err != nil {
		return err
	}
	if _, err := client.Do(req); err != nil { // Do is fine: the request carries the context
		return err
	}

	if _, err := client.Get("http://peer/healthz"); err != nil { // want `Get sends a request with no context`
		return err
	}
	if _, err := http.Head("http://peer/healthz"); err != nil { // want `Head sends a request with no context`
		return err
	}

	good, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://peer/tables/E1", nil)
	if err != nil {
		return err
	}
	_, err = client.Do(good)
	return err
}
