package ctxflow_test

import (
	"testing"

	"repro/internal/analysis/atest"
	"repro/internal/analysis/ctxflow"
)

func TestCoveredPackage(t *testing.T) {
	atest.Run(t, ctxflow.Analyzer, "repro/internal/serve")
}

// TestUncoveredPackage pins the gate: the measurement engines may root
// their own contexts.
func TestUncoveredPackage(t *testing.T) {
	atest.Run(t, ctxflow.Analyzer, "repro/internal/experiments")
}
