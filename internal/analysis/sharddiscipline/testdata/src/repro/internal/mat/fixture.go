// Package mat is a sharddiscipline fixture: the row-sharded primitives
// plus in-package worker closures exercising the write rules.
package mat

import "repro/internal/par"

// Dense is a minimal row-major matrix.
type Dense struct {
	n    int
	data []float64
}

// Row returns row i.
func (m *Dense) Row(i int) []float64 { return m.data[i*m.n : (i+1)*m.n] }

// ParRange runs fn(i) for i = 0..n−1, sharded.
func ParRange(n, workers int, fn func(i int)) {
	par.Do(workers, func(s int) error {
		fn(s)
		return nil
	})
}

// ApplyRows runs fn over every row, row-parallel.
func (m *Dense) ApplyRows(workers int, fn func(i int, row []float64)) {
	ParRange(m.n, workers, func(i int) { fn(i, m.Row(i)) })
}

// MatVec is the compliant shape: every write lands at a closure-local
// index or in closure-local storage.
func (m *Dense) MatVec(dst, x []float64, workers int) {
	spans := []par.Span{{Lo: 0, Hi: uint64(m.n)}}
	par.Do(len(spans), func(s int) error {
		for i := spans[s].Lo; i < spans[s].Hi; i++ {
			row := m.Row(int(i))
			var sum float64
			for j, w := range row {
				sum += w * x[j]
			}
			dst[i] = sum
		}
		return nil
	})
}

// sharedAccumulator is the classic violation: a cross-worker reduction
// inside the closure.
func sharedAccumulator(m *Dense, workers int) float64 {
	var total float64
	count := 0
	par.Do(workers, func(s int) error {
		total += float64(s) // want `worker closure writes captured variable total`
		count++             // want `worker closure writes captured variable count`
		return nil
	})
	return total + float64(count)
}

// fixedIndex writes every worker to the same element.
func fixedIndex(out []float64, workers int) {
	par.Do(workers, func(s int) error {
		out[0] = 1 // want `worker closure writes out at an index with no closure-local variable`
		return nil
	})
}

// spanIndexed is fine: the index is the worker's own shard variable.
func spanIndexed(out []float64, workers int) {
	par.Do(workers, func(s int) error {
		out[s] = 1
		return nil
	})
}

// capturedMap faults under concurrency and has random order anyway.
func capturedMap(workers int) {
	seen := map[int]bool{}
	ParRange(8, workers, func(i int) {
		seen[i] = true // want `worker closure writes captured map seen`
	})
}

// pointerAndField writes shared state through a pointer and a struct.
func pointerAndField(m *Dense, workers int) {
	type acc struct{ n int }
	var shared acc
	best := new(float64)
	m.ApplyRows(workers, func(i int, row []float64) {
		shared.n = i   // want `worker closure writes field shared\.n of a captured value`
		*best = row[0] // want `worker closure writes through captured pointer best`
	})
}

// localState is fine: per-shard tallies declared inside the closure,
// merged by par.Map outside.
func localState(workers int) ([]int, error) {
	return par.Map(8, workers, func(sp par.Span) (int, error) {
		type tally struct{ n int }
		var t tally
		for i := sp.Lo; i < sp.Hi; i++ {
			t.n++
		}
		return t.n, nil
	})
}

// waived shows the escape hatch for a humanly-proven-disjoint write.
func waived(out []float64, workers int) {
	par.Do(workers, func(s int) error {
		//bcclint:allow(sharddiscipline) single-shard call: par.Do(1, ...) runs inline
		out[0] = 1
		return nil
	})
}

// notARunner: writes in closures handed to anything else are not this
// analyzer's business (the range-over-rows helper below is sequential).
func notARunner(out []float64) {
	each(len(out), func(i int) {
		out[0] = float64(i)
	})
}

func each(n int, fn func(int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

func reasonless(out []float64, workers int) {
	par.Do(workers, func(s int) error {
		out[0] = 1 /*bcclint:allow(sharddiscipline)*/ // want `bcclint:allow\(sharddiscipline\) needs a reason` `worker closure writes out at an index`
		return nil
	})
}
