// Package par is a sharddiscipline fixture dependency: the worker
// fan-out entry points the analyzer recognizes by (package, name).
package par

// Span is a half-open shard [Lo, Hi).
type Span struct{ Lo, Hi uint64 }

// Do runs fn once per shard.
func Do(shards int, fn func(shard int) error) error {
	for s := 0; s < shards; s++ {
		if err := fn(s); err != nil {
			return err
		}
	}
	return nil
}

// Map runs fn once per span and collects results in span order.
func Map(n uint64, workers int, fn func(s Span) (int, error)) ([]int, error) {
	out := make([]int, workers)
	err := Do(workers, func(i int) error {
		v, err := fn(Span{Lo: uint64(i), Hi: uint64(i) + 1})
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
