// Package serve is a sharddiscipline fixture for the package gate: the
// serving plane synchronizes with locks and channels, not index
// disjointness, so its closures are not this analyzer's business.
package serve

import "repro/internal/par"

func uncovered(workers int) int {
	n := 0
	_ = par.Do(workers, func(s int) error {
		n++ // guarded by sync elsewhere; not a covered package
		return nil
	})
	return n
}
