// Package lowerbound is a sharddiscipline fixture: a measurement
// package using the runners from OTHER packages (cross-package
// recognition of par.Do / mat.ParRange).
package lowerbound

import (
	"repro/internal/mat"
	"repro/internal/par"
)

// EstimateTV is the compliant sharded-measurement shape.
func EstimateTV(samples uint64, workers int) (float64, error) {
	shards, err := par.Map(samples, workers, func(sp par.Span) (int, error) {
		hits := 0
		for i := sp.Lo; i < sp.Hi; i++ {
			if i%2 == 0 {
				hits++
			}
		}
		return hits, nil
	})
	if err != nil {
		return 0, err
	}
	total := 0
	for _, h := range shards {
		total += h
	}
	return float64(total) / float64(samples), nil
}

// LeakyEstimate races on the captured accumulator.
func LeakyEstimate(samples uint64, workers int) float64 {
	hits := 0
	_, _ = par.Map(samples, workers, func(sp par.Span) (int, error) {
		for i := sp.Lo; i < sp.Hi; i++ {
			hits++ // want `worker closure writes captured variable hits`
		}
		return 0, nil
	})
	scores := make([]float64, 8)
	mat.ParRange(8, workers, func(i int) {
		scores[i] = float64(i) // index-disjoint: fine
	})
	return float64(hits) + scores[0]
}
