package sharddiscipline_test

import (
	"testing"

	"repro/internal/analysis/atest"
	"repro/internal/analysis/sharddiscipline"
)

func TestMatPackage(t *testing.T) {
	atest.Run(t, sharddiscipline.Analyzer, "repro/internal/mat")
}

// TestCrossPackage pins that par.Do / mat.ParRange are recognized from
// an importing measurement package.
func TestCrossPackage(t *testing.T) {
	atest.Run(t, sharddiscipline.Analyzer, "repro/internal/lowerbound")
}

// TestUncoveredPackage pins the gate.
func TestUncoveredPackage(t *testing.T) {
	atest.Run(t, sharddiscipline.Analyzer, "repro/internal/serve")
}
