// Package sharddiscipline mechanizes the sharded-write contract that
// makes the parallel engines bit-identical at every worker count
// (internal/mat's package doc states it; every sharded measurement
// loop relies on it): inside a worker closure handed to par.Do,
// par.Map, mat.ParRange, or Dense.ApplyRows, every write must land in
// state owned by that worker's indices — an element of a captured
// slice indexed by a closure-local variable (the span/loop index), or
// storage declared inside the closure. Writes that two workers could
// both reach are flagged:
//
//   - assigning or ++/-- on a captured scalar (a shared accumulator —
//     the classic lost-update race, and even "benign" races reorder
//     float reductions and break bit-determinism);
//   - writing a captured slice element whose index involves no
//     closure-local variable (every worker hits the same element);
//   - writing into a captured map (concurrent map writes fault, and
//     iteration order would differ anyway);
//   - writing through a captured pointer or a captured struct's field.
//
// Reads of captured state are free — instances, matrices, and spans
// are shared read-only inputs. Writes the analyzer cannot prove
// disjoint but a human can carry a reasoned
// //bcclint:allow(sharddiscipline) directive.
package sharddiscipline

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis/bcc"
	"repro/internal/xtools/go/analysis"
)

// coveredPkgs are internal/mat plus every package running sharded
// measurement loops over par.
var coveredPkgs = []string{
	"internal/mat",
	"internal/recover",
	"internal/dist",
	"internal/lowerbound",
	"internal/cliquefind",
	"internal/core",
	"internal/newman",
	"internal/rankprot",
}

var Analyzer = &analysis.Analyzer{
	Name: "sharddiscipline",
	Doc: "inside par.Do/par.Map/mat.ParRange/Dense.ApplyRows worker closures, " +
		"every write must be index-disjoint: no captured scalars, no captured " +
		"map writes, no slice writes at a closure-invariant index",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	allow := bcc.NewAllower(pass)
	if !bcc.PathMatches(pass.Pkg.Path(), coveredPkgs...) {
		return nil, nil
	}
	for _, f := range pass.Files {
		if bcc.IsTestFile(pass, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isShardRunner(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				if lit, ok := arg.(*ast.FuncLit); ok {
					checkWorker(pass, allow, lit)
				}
			}
			return true
		})
	}
	return nil, nil
}

// isShardRunner recognizes the worker fan-out entry points: par.Do,
// par.Map, mat.ParRange, and the ApplyRows method of mat.Dense —
// whether package-qualified or called from their own package.
func isShardRunner(pass *analysis.Pass, call *ast.CallExpr) bool {
	var callee *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		callee = fun.Sel
	case *ast.Ident:
		callee = fun
	default:
		return false
	}
	fn, ok := pass.TypesInfo.Uses[callee].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	switch {
	case bcc.PathMatches(fn.Pkg().Path(), "internal/par") && (fn.Name() == "Do" || fn.Name() == "Map"):
		return true
	case bcc.PathMatches(fn.Pkg().Path(), "internal/mat") && (fn.Name() == "ParRange" || fn.Name() == "ApplyRows"):
		return true
	}
	return false
}

// checkWorker walks one worker closure and flags writes that are not
// index-disjoint. Locality is positional: an object declared inside
// the closure's source range (parameters included) is worker-owned.
func checkWorker(pass *analysis.Pass, allow *bcc.Allower, lit *ast.FuncLit) {
	lo, hi := lit.Pos(), lit.End()
	local := func(id *ast.Ident) bool {
		return id.Name == "_" || bcc.DeclaredWithin(pass, id, lo, hi)
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				checkWrite(pass, allow, lhs, n.Tok.String(), local)
			}
		case *ast.IncDecStmt:
			checkWrite(pass, allow, n.X, n.Tok.String(), local)
		}
		return true
	})
}

func checkWrite(pass *analysis.Pass, allow *bcc.Allower, lhs ast.Expr, op string, local func(*ast.Ident) bool) {
	switch lhs := lhs.(type) {
	case *ast.Ident:
		if !local(lhs) {
			allow.Reportf(lhs.Pos(),
				"worker closure writes captured variable %s (%s): every output element must be written by exactly one goroutine — accumulate per-shard and merge outside",
				lhs.Name, op)
		}
	case *ast.IndexExpr:
		base, ok := rootIdent(lhs.X)
		if !ok || local(base) {
			return // writing closure-local storage (or unresolvable) is the worker's own business
		}
		if _, isMap := pass.TypesInfo.TypeOf(lhs.X).Underlying().(*types.Map); isMap {
			allow.Reportf(lhs.Pos(),
				"worker closure writes captured map %s: concurrent map writes fault and iteration order is random — write a per-shard slice instead",
				base.Name)
			return
		}
		if !exprUsesLocal(lhs.Index, local) {
			allow.Reportf(lhs.Pos(),
				"worker closure writes %s at an index with no closure-local variable: every worker hits the same element; index by the span/loop variable",
				base.Name)
		}
	case *ast.StarExpr:
		if base, ok := rootIdent(lhs.X); ok && !local(base) {
			allow.Reportf(lhs.Pos(),
				"worker closure writes through captured pointer %s: the target is shared across workers", base.Name)
		}
	case *ast.SelectorExpr:
		// Only flag field writes on captured values; method-value and
		// package-qualified selectors never appear as assignment targets.
		if base, ok := rootIdent(lhs.X); ok && !local(base) {
			allow.Reportf(lhs.Pos(),
				"worker closure writes field %s.%s of a captured value: shared across workers — give each shard its own struct and merge outside",
				base.Name, lhs.Sel.Name)
		}
	}
}

// rootIdent peels selectors, indexes, stars, and parens down to the
// leftmost identifier of an lvalue expression.
func rootIdent(e ast.Expr) (*ast.Ident, bool) {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x, true
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil, false
		}
	}
}

// exprUsesLocal reports whether any identifier in e is closure-local —
// the (deliberately permissive) index-disjointness witness.
func exprUsesLocal(e ast.Expr, local func(*ast.Ident) bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name != "_" && local(id) {
			found = true
		}
		return !found
	})
	return found
}
