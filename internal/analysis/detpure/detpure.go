// Package detpure mechanizes the bit-determinism contract of the
// fingerprint-feeding packages: every byte of a fingerprinted table
// must be a pure function of (ID, Seed, Quick), worker-invariant and
// host-invariant. Three drift classes have historically threatened it
// and are forbidden here:
//
//   - wall clocks (time.Now / time.Since / time.Until) — a timestamp in
//     a compute path makes two runs of the same cell differ;
//   - math/rand (v1 or v2) — the only sanctioned randomness is the
//     repository's own seeded streams (rng.New / rng.Shard), whose
//     derivation is pure in (seed, index); global or ad-hoc sources
//     break worker invariance and replayability;
//   - map iteration feeding ordered output — ranging over a map while
//     appending to a slice, writing a builder, or adding table rows
//     leaks Go's randomized iteration order into serialized bytes.
//     Collecting the keys (`ks = append(ks, k)` in a key-only range)
//     and sorting them is the required idiom and is not flagged.
//
// Deliberate exceptions (operator-facing wall time that never enters a
// table, for example) carry a reasoned //bcclint:allow(detpure)
// directive; see internal/analysis/bcc and docs/lint.md.
package detpure

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis/bcc"
	"repro/internal/xtools/go/analysis"
)

// coveredPkgs are the fingerprint-feeding packages: everything whose
// computation lands in a result.Table's canonical bytes.
var coveredPkgs = []string{
	"internal/dist",
	"internal/lowerbound",
	"internal/experiments",
	"internal/result",
	"internal/mat",
	"internal/recover",
	"internal/cliquefind",
	"internal/rankprot",
	"internal/newman",
	"internal/core",
}

// wallFuncs are the forbidden time package functions. time.Sleep is
// not here: it wastes wall clock but cannot change a computed byte.
var wallFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

var Analyzer = &analysis.Analyzer{
	Name: "detpure",
	Doc: "forbid wall clocks, math/rand, and map-order-dependent output " +
		"in the fingerprint-feeding packages (the bit-determinism contract)",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	allow := bcc.NewAllower(pass)
	if !bcc.PathMatches(pass.Pkg.Path(), coveredPkgs...) {
		return nil, nil
	}
	for _, f := range pass.Files {
		if bcc.IsTestFile(pass, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ImportSpec:
				checkImport(pass, allow, n)
			case *ast.CallExpr:
				checkWallClock(pass, allow, n)
			case *ast.RangeStmt:
				checkMapRange(pass, allow, n)
			}
			return true
		})
	}
	return nil, nil
}

func checkImport(pass *analysis.Pass, allow *bcc.Allower, spec *ast.ImportSpec) {
	switch spec.Path.Value {
	case `"math/rand"`, `"math/rand/v2"`:
		allow.Reportf(spec.Pos(),
			"import of %s in a fingerprint-feeding package: use the seeded rng streams (rng.New / rng.Shard) instead",
			spec.Path.Value)
	}
}

func checkWallClock(pass *analysis.Pass, allow *bcc.Allower, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" || !wallFuncs[fn.Name()] {
		return
	}
	allow.Reportf(call.Pos(),
		"time.%s in a fingerprint-feeding package: a computed table must be a pure function of (ID, Seed, Quick)",
		fn.Name())
}

// checkMapRange flags a range over a map whose body builds ordered
// output: appends, builder/buffer writes, Fprint-family calls, or
// writes into a slice element. The one blessed shape is the sorted-keys
// gather — a key-only range appending exactly the key.
func checkMapRange(pass *analysis.Pass, allow *bcc.Allower, rng *ast.RangeStmt) {
	if _, ok := pass.TypesInfo.TypeOf(rng.X).Underlying().(*types.Map); !ok {
		return
	}
	keyObj := rangeKeyObject(pass, rng)
	keyOnly := rng.Value == nil || isBlank(rng.Value)
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isBuiltinAppend(pass, n) {
				if keyOnly && appendsOnlyKey(pass, n, keyObj) {
					return true // the sorted-keys idiom's gather step
				}
				allow.Reportf(n.Pos(),
					"append inside a range over a map: iteration order leaks into the result; collect the keys, sort, then build")
				return true
			}
			if name, ok := orderedSink(pass, n); ok {
				allow.Reportf(n.Pos(),
					"%s inside a range over a map writes output in iteration order; iterate sorted keys instead", name)
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if ix, ok := lhs.(*ast.IndexExpr); ok {
					switch pass.TypesInfo.TypeOf(ix.X).Underlying().(type) {
					case *types.Slice, *types.Array, *types.Pointer:
						allow.Reportf(lhs.Pos(),
							"slice element written inside a range over a map: element order follows iteration order; iterate sorted keys instead")
					}
				}
			}
		}
		return true
	})
}

func rangeKeyObject(pass *analysis.Pass, rng *ast.RangeStmt) types.Object {
	id, ok := rng.Key.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	return pass.TypesInfo.ObjectOf(id)
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// appendsOnlyKey reports whether every appended element is exactly the
// range key identifier.
func appendsOnlyKey(pass *analysis.Pass, call *ast.CallExpr, key types.Object) bool {
	if key == nil || len(call.Args) < 2 || call.Ellipsis.IsValid() {
		return false
	}
	for _, arg := range call.Args[1:] {
		id, ok := arg.(*ast.Ident)
		if !ok || pass.TypesInfo.ObjectOf(id) != key {
			return false
		}
	}
	return true
}

// orderedSink recognizes calls that emit ordered output: methods of
// builders/buffers/tables (WriteString, WriteByte, WriteRune, Write,
// AddRow) and the fmt.Fprint family.
func orderedSink(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", false
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		switch fn.Name() {
		case "Fprint", "Fprintf", "Fprintln":
			return "fmt." + fn.Name(), true
		}
		return "", false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() == nil {
		return "", false
	}
	switch fn.Name() {
	case "WriteString", "WriteByte", "WriteRune", "Write", "AddRow":
		return fn.Name(), true
	}
	return "", false
}
