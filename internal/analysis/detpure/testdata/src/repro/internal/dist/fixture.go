// Package dist is a detpure fixture: it stands in for a
// fingerprint-feeding package and exercises every check plus the
// escape hatch.
package dist

import (
	"fmt"
	"strings"
	"time"

	_ "math/rand" // want `import of "math/rand" in a fingerprint-feeding package`

	_ "math/rand/v2" // want `import of "math/rand/v2" in a fingerprint-feeding package`
)

// table mimics result.Table's row builder.
type table struct{ rows [][]string }

func (t *table) AddRow(cells ...string) { t.rows = append(t.rows, cells) }

func wallClock() time.Duration {
	start := time.Now()   // want `time\.Now in a fingerprint-feeding package`
	_ = time.Until(start) // want `time\.Until in a fingerprint-feeding package`

	//bcclint:allow(detpure) operator-facing wall time, never enters a table
	again := time.Now()
	_ = again

	return time.Since(start) // want `time\.Since in a fingerprint-feeding package`
}

func reasonless() {
	// A reasonless waiver is reported AND suppresses nothing.
	_ = time.Now() /*bcclint:allow(detpure)*/ // want `bcclint:allow\(detpure\) needs a reason` `time\.Now in a fingerprint-feeding package`
}

func wrongAnalyzer() {
	//bcclint:allow(ctxflow) a waiver for another analyzer is inert here
	_ = time.Now() // want `time\.Now in a fingerprint-feeding package`
}

func mapOrder(m map[string]int) ([]string, string) {
	// The sorted-keys gather step is the blessed idiom: key-only range,
	// appending exactly the key.
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}

	// Everything else leaks iteration order into ordered output.
	var vals []int
	for _, v := range m {
		vals = append(vals, v) // want `append inside a range over a map`
	}
	_ = vals

	var pairs []string
	for k, v := range m {
		pairs = append(pairs, fmt.Sprintf("%s=%d", k, v)) // want `append inside a range over a map`
	}
	_ = pairs

	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want `WriteString inside a range over a map`
	}
	for k := range m {
		fmt.Fprintf(&b, "%s,", k) // want `fmt\.Fprintf inside a range over a map`
	}

	t := &table{}
	for k := range m {
		t.AddRow(k) // want `AddRow inside a range over a map`
	}

	out := make([]int, 4)
	i := 0
	for _, v := range m {
		out[i] = v // want `slice element written inside a range over a map`
		i++
	}
	_ = out

	for k := range m {
		//bcclint:allow(detpure) feeding an order-insensitive set, not serialized output
		ks = append(ks, k+k)
	}
	return ks, b.String()
}

// mapReadOnly shows order-insensitive map ranges are free.
func mapReadOnly(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}
