// Package metrics is a detpure fixture for the package gate: it is NOT
// a fingerprint-feeding package, so wall clocks and map-order appends
// are free here — but a reasonless allow directive is still reported,
// tree-wide, so no unexplained waiver can hide in an uncovered corner.
package metrics

import "time"

func uncovered(m map[string]int) []int {
	_ = time.Now()
	var vals []int
	for _, v := range m {
		vals = append(vals, v)
	}
	return vals
}

func staleWaiver() {
	_ = time.Now() /*bcclint:allow(detpure)*/ // want `bcclint:allow\(detpure\) needs a reason`
}
