package detpure_test

import (
	"testing"

	"repro/internal/analysis/atest"
	"repro/internal/analysis/detpure"
)

func TestCoveredPackage(t *testing.T) {
	atest.Run(t, detpure.Analyzer, "repro/internal/dist")
}

// TestUncoveredPackage pins the gate: outside the fingerprint-feeding
// set only the reasonless-waiver check fires.
func TestUncoveredPackage(t *testing.T) {
	atest.Run(t, detpure.Analyzer, "repro/internal/metrics")
}
