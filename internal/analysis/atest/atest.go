// Package atest is the repository's analysistest: it runs a bcclint
// analyzer over GOPATH-style fixture packages under testdata/src and
// checks the diagnostics against // want comments, the same fixture
// grammar golang.org/x/tools/go/analysis/analysistest uses. It exists
// because this repository vendors the analysis framework from the Go
// toolchain's own copy (internal/xtools), which ships the unitchecker
// driver but not the test harness.
//
// # Fixture layout and grammar
//
// A fixture package lives at testdata/src/<import/path>/*.go relative
// to the calling test's package directory. Import paths are honored:
// a fixture at testdata/src/repro/internal/store/ typechecks as
// package path "repro/internal/store", which is how fixtures land
// inside an analyzer's covered-package gate, and fixtures may import
// one another by those paths. Standard-library imports resolve
// through the stdlib source importer (offline; cgo disabled).
//
// A diagnostic expectation is a trailing comment on the offending
// line:
//
//	_ = time.Now() // want `time\.Now in a fingerprint-feeding package`
//
// Each quoted or backquoted string is a regexp that must match a
// diagnostic reported on that line; diagnostics with no matching want
// and wants with no matching diagnostic both fail the test.
package atest

import (
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/xtools/go/analysis"
)

func init() {
	// The stdlib source importer follows go/build's default context;
	// with cgo enabled it would try to run the cgo tool on package net.
	// The pure-Go variants are all the fixtures need.
	build.Default.CgoEnabled = false
}

// Run loads the fixture package at pkgpath (under testdata/src, GOPATH
// layout, relative to the calling test's directory), runs the analyzer
// over it, and compares diagnostics against the fixture's // want
// comments.
func Run(t *testing.T, a *analysis.Analyzer, pkgpath string) {
	t.Helper()
	testdata, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	l := &loader{
		testdata: testdata,
		fset:     token.NewFileSet(),
		loaded:   map[string]*loadedPkg{},
	}
	l.std = importer.ForCompiler(l.fset, "source", nil)
	pkg, err := l.load(pkgpath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgpath, err)
	}

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       l.fset,
		Files:      pkg.files,
		Pkg:        pkg.pkg,
		TypesInfo:  pkg.info,
		TypesSizes: types.SizesFor("gc", build.Default.GOARCH),
		ResultOf:   map[*analysis.Analyzer]any{},
		Report:     func(d analysis.Diagnostic) { diags = append(diags, d) },
		ReadFile:   os.ReadFile,
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("%s: Run failed: %v", a.Name, err)
	}
	check(t, l.fset, pkg.files, diags)
}

type loadedPkg struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

// loader resolves fixture packages from testdata/src and everything
// else from the standard library source importer. It memoizes so
// diamond imports typecheck against one *types.Package identity.
type loader struct {
	testdata string
	fset     *token.FileSet
	std      types.Importer
	loaded   map[string]*loadedPkg
}

func (l *loader) Import(path string) (*types.Package, error) {
	if dir := filepath.Join(l.testdata, "src", filepath.FromSlash(path)); isDir(dir) {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.pkg, nil
	}
	return l.std.Import(path)
}

func (l *loader) load(pkgpath string) (*loadedPkg, error) {
	if p, ok := l.loaded[pkgpath]; ok {
		return p, nil
	}
	dir := filepath.Join(l.testdata, "src", filepath.FromSlash(pkgpath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(pkgpath, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	p := &loadedPkg{pkg: pkg, files: files, info: info}
	l.loaded[pkgpath] = p
	return p, nil
}

func isDir(path string) bool {
	fi, err := os.Stat(path)
	return err == nil && fi.IsDir()
}

// want is one expectation: a regexp on a specific file line.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	text string
	hit  bool
}

var wantRE = regexp.MustCompile("(\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`)")

// check matches reported diagnostics against // want comments.
func check(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				body, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue
				}
				body = strings.TrimSpace(body)
				body, ok = strings.CutPrefix(body, "want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, q := range wantRE.FindAllString(body, -1) {
					text := q
					if q[0] == '"' {
						var err error
						if text, err = strconv.Unquote(q); err != nil {
							t.Fatalf("%s: bad want string %s: %v", pos, q, err)
						}
					} else {
						text = strings.Trim(q, "`")
					}
					re, err := regexp.Compile(text)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, text, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, text: text})
				}
			}
		}
	}

	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.text)
		}
	}
}
