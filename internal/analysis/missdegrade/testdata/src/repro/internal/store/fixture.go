// Package store is a missdegrade fixture: a tier implementation bound
// by the every-failure-is-a-miss contract.
package store

import (
	"context"
	"errors"
	"log"
	"os"

	"repro/internal/result"
)

// Key stands in for store.Key.
type Key struct{ Fingerprint string }

// Tier is a backend under test.
type Tier struct{}

// Get has the contract's shape: failures collapse to a miss.
func (t *Tier) Get(ctx context.Context, k Key) (*result.Table, bool) {
	tab, err := t.fetch(ctx, k)
	if err != nil {
		return nil, false
	}
	return tab, true
}

// GetErr leaks the transport error past the boundary.
func (t *Tier) GetErr(ctx context.Context, k Key) (*result.Table, error) { // want `GetErr returns a table and an error: the tier boundary is \(table, bool\)`
	return t.fetch(ctx, k)
}

// Fetch is a package-level offender with the same bad shape.
func Fetch(k Key) (*result.Table, error) { // want `Fetch returns a table and an error`
	return nil, errors.New("dial tcp: connection refused")
}

// fetch is an unexported helper INSIDE the boundary: it may carry the
// raw error, because Get above folds it into a miss.
func (t *Tier) fetch(ctx context.Context, k Key) (*result.Table, error) {
	return &result.Table{ID: k.Fingerprint}, nil
}

// Put may return an error (persistence degrades, the answer does not),
// but it must not kill the process or the request.
func (t *Tier) Put(k Key, tab *result.Table) error {
	if tab == nil {
		panic("store: nil table") // want `panic in a store tier`
	}
	if k.Fingerprint == "" {
		log.Fatalf("store: empty fingerprint") // want `log\.Fatalf in a store tier`
	}
	if tab.ID == "" {
		os.Exit(1) // want `os\.Exit in a store tier`
	}
	return nil
}

// New shows the escape hatch on a construction-time guard.
func New(tiers int) *Tier {
	if tiers == 0 {
		//bcclint:allow(missdegrade) construction-time misconfiguration guard, unreachable once serving
		panic("store: empty stack")
	}
	return &Tier{}
}

func reasonless(tab *result.Table) {
	if tab == nil {
		panic("boom") /*bcclint:allow(missdegrade)*/ // want `bcclint:allow\(missdegrade\) needs a reason` `panic in a store tier`
	}
}
