// Package sched is a missdegrade fixture for the package gate: the
// scheduler sits ABOVE the tier boundary — its TableCtx legitimately
// returns a table alongside an error (a failed computation is an
// error, not a miss), so nothing here is flagged.
package sched

import (
	"errors"

	"repro/internal/result"
)

// TableCtx computes (or fails to compute) a table: error-carrying by
// design, because above the boundary a failure must surface.
func TableCtx(id string) (*result.Table, error) {
	if id == "" {
		return nil, errors.New("sched: empty experiment id")
	}
	return &result.Table{ID: id}, nil
}
