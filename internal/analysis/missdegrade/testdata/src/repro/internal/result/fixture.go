// Package result is a missdegrade fixture dependency: a minimal stand-in
// for the real result package, so the store fixture's signatures carry
// a genuine *result.Table from a package the analyzer recognizes.
package result

// Table stands in for result.Table.
type Table struct {
	ID string
}
