// Package missdegrade mechanizes the tier degradation contract
// (ARCHITECTURE.md: "every failure is a miss"): a store tier — disk,
// memory, shared bucket, HTTP peer, or their composition — degrades,
// it never fails a lookup and never takes the process down. Concretely,
// in the store packages:
//
//   - no exported function or method may return a *result.Table
//     together with an error. The tier boundary's shape is
//     (table, bool): transport errors, damage, and timeouts all
//     collapse to a miss before they cross it. A (table, error)
//     signature is a raw transport error waiting to leak past the
//     boundary. Unexported helpers may carry errors — they live
//     inside the boundary, where Get folds them into a miss;
//   - no panic on the serving path — a damaged envelope or a hung
//     bucket must degrade the lookup, not crash the replica. The rare
//     construction-time misconfiguration guard (unreachable once a
//     tier is serving) carries a reasoned //bcclint:allow(missdegrade)
//     directive;
//   - no log.Fatal* / os.Exit — same contract, stronger failure.
//
// The ObjectClient layer sits *below* the boundary (its Get/Put return
// ([]byte, error) by design); only table-shaped results are gated.
package missdegrade

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis/bcc"
	"repro/internal/xtools/go/analysis"
)

// coveredPkgs are the tier implementations bound by the degradation
// contract.
var coveredPkgs = []string{
	"internal/store",
	"internal/store/memlru",
	"internal/store/objstore",
	"internal/store/remote",
	"internal/store/tier",
}

var Analyzer = &analysis.Analyzer{
	Name: "missdegrade",
	Doc: "store tiers degrade to a miss, never fail or die: forbid " +
		"(*result.Table, error) signatures, panic, log.Fatal, and os.Exit " +
		"in the store packages",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	allow := bcc.NewAllower(pass)
	if !bcc.PathMatches(pass.Pkg.Path(), coveredPkgs...) {
		return nil, nil
	}
	for _, f := range pass.Files {
		if bcc.IsTestFile(pass, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkSignature(pass, allow, n)
			case *ast.CallExpr:
				checkCall(pass, allow, n)
			}
			return true
		})
	}
	return nil, nil
}

// checkSignature flags any exported function or method whose results
// carry both a *result.Table and an error — the shape that lets a raw
// transport error cross the tier boundary.
func checkSignature(pass *analysis.Pass, allow *bcc.Allower, fd *ast.FuncDecl) {
	if !fd.Name.IsExported() {
		return
	}
	obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	results := obj.Type().(*types.Signature).Results()
	var hasTable, hasErr bool
	for i := 0; i < results.Len(); i++ {
		t := results.At(i).Type()
		if isResultTable(t) {
			hasTable = true
		}
		if named, ok := t.(*types.Named); ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
			hasErr = true
		}
	}
	if hasTable && hasErr {
		allow.Reportf(fd.Name.Pos(),
			"%s returns a table and an error: the tier boundary is (table, bool) — a transport failure must degrade to a miss, never propagate raw",
			fd.Name.Name)
	}
}

func isResultTable(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Table" && obj.Pkg() != nil &&
		bcc.PathMatches(obj.Pkg().Path(), "internal/result")
}

func checkCall(pass *analysis.Pass, allow *bcc.Allower, call *ast.CallExpr) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if b, ok := pass.TypesInfo.Uses[fun].(*types.Builtin); ok && b.Name() == "panic" {
			allow.Reportf(call.Pos(),
				"panic in a store tier: a tier degrades to a miss, it never takes the serving path down")
		}
	case *ast.SelectorExpr:
		fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return
		}
		switch {
		case fn.Pkg().Path() == "log" && (fn.Name() == "Fatal" || fn.Name() == "Fatalf" || fn.Name() == "Fatalln"),
			fn.Pkg().Path() == "os" && fn.Name() == "Exit":
			allow.Reportf(call.Pos(),
				"%s.%s in a store tier: a tier degrades to a miss, it never takes the process down",
				fn.Pkg().Name(), fn.Name())
		}
	}
}
