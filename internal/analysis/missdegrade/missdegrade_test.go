package missdegrade_test

import (
	"testing"

	"repro/internal/analysis/atest"
	"repro/internal/analysis/missdegrade"
)

func TestStorePackage(t *testing.T) {
	atest.Run(t, missdegrade.Analyzer, "repro/internal/store")
}

// TestAboveTheBoundary pins the gate: sched returns (table, error) by
// design and is not a tier.
func TestAboveTheBoundary(t *testing.T) {
	atest.Run(t, missdegrade.Analyzer, "repro/internal/sched")
}
