// Package experiments contains the reproduction harness: one entry point
// per experiment in the All registry (E1..E17), each regenerating the
// empirical counterpart of a theorem, lemma, or claim in the paper. Every
// experiment returns a Table whose rows print "measured vs predicted" so
// the results document can be regenerated mechanically (cmd/experiments)
// and the root benchmarks can assert the shapes.
package experiments

import (
	"context"
	"runtime"

	"repro/internal/result"
)

// Config controls experiment scale and reproducibility.
type Config struct {
	// Seed drives every sampler; equal seeds give identical tables.
	Seed uint64
	// Quick shrinks trial counts for CI-speed runs; shapes remain visible
	// but error bars widen.
	Quick bool
	// Workers sizes the goroutine pools of the measurement engines
	// (Monte-Carlo estimators, exact enumeration, detector/attack
	// trials); 0 means runtime.GOMAXPROCS(0). Tables for a fixed Seed are
	// identical for every Workers value — parallelism is only a
	// wall-clock knob.
	Workers int
	// Ctx optionally carries the requester's cancellation signal into
	// the estimator call path: the scheduler (internal/sched) sets it to
	// the computation's context, and long-running experiments poll Err
	// between measurement calls so an abandoned request stops burning
	// CPU. nil means "never canceled". Like Workers, Ctx can only stop a
	// run early (with an error), never change a completed table's
	// content, so it is excluded from Params and the fingerprint.
	Ctx context.Context
}

// Err reports the cancellation state of the run's context: nil while
// the run should continue, the context's error once the requester has
// abandoned it. Experiments poll this between expensive measurement
// calls and return the error unchanged, so a canceled run is
// distinguishable from a failed one.
func (c Config) Err() error {
	if c.Ctx == nil {
		return nil
	}
	return context.Cause(c.Ctx)
}

// workers resolves the configured pool size.
func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// trials scales a full-run trial count down in quick mode.
func (c Config) trials(full int) int {
	if c.Quick {
		t := full / 5
		if t < 4 {
			t = 4
		}
		return t
	}
	return full
}

// Table is one experiment's typed result: rows of result.Cell values
// whose markdown view (Render) matches the historical string tables byte
// for byte, and whose canonical JSON view feeds the store and the
// serving API. The alias keeps the whole harness on the shared model in
// internal/result.
type Table = result.Table

// Params returns the subset of the configuration that determines table
// content — the fingerprint identity. Workers is excluded: tables are
// bit-identical for every worker count.
func (c Config) Params() result.Params {
	return result.Params{Seed: c.Seed, Quick: c.Quick}
}

// Fingerprint returns the content address of experiment id's table under
// this configuration at the current schema version.
func (c Config) Fingerprint(id string) string {
	return result.Fingerprint(id, c.Params(), result.SchemaVersion)
}

// Experiment pairs an id with its runner.
type Experiment struct {
	// ID is the registry experiment id (E1..E17).
	ID string
	// Title names the reproduced statement.
	Title string
	// Run executes the experiment.
	Run func(cfg Config) (*Table, error)
}

// All returns every experiment in index order.
func All() []Experiment {
	return []Experiment{
		{ID: "E1", Title: "Lemma 1.10: single-coordinate restriction", Run: E1SingleBitLemma},
		{ID: "E2", Title: "Lemma 1.8: clique-restriction distance", Run: E2CliqueRestriction},
		{ID: "E3", Title: "Theorem 1.6 / Cor 1.7: one-round planted clique", Run: E3OneRoundPlantedClique},
		{ID: "E4", Title: "Theorem 4.1: multi-round planted clique", Run: E4MultiRoundPlantedClique},
		{ID: "E5", Title: "Lemma 5.2: Fourier inequality", Run: E5FourierLemma},
		{ID: "E6", Title: "Theorem 5.3: toy PRG fools low rounds", Run: E6ToyPRG},
		{ID: "E7", Title: "Theorem 1.3/5.4: full PRG", Run: E7FullPRG},
		{ID: "E8", Title: "Theorem 1.4: average-case rank hardness", Run: E8AverageCaseRank},
		{ID: "E9", Title: "Theorem 1.5: time hierarchy", Run: E9TimeHierarchy},
		{ID: "E10", Title: "Theorem 8.1: seed-length lower bound", Run: E10SeedLowerBound},
		{ID: "E11", Title: "Theorem A.1: Newman in BCAST(1)", Run: E11Newman},
		{ID: "E12", Title: "Theorem B.1: planted clique recovery", Run: E12CliqueRecovery},
		{ID: "E13", Title: "Claims 5/8: support concentration", Run: E13SupportConcentration},
		{ID: "E14", Title: "Ablation: seed-size security crossover", Run: E14SeedCrossover},
		{ID: "E15", Title: "Lemmas 4.3/4.4 and Claim 3 (conditioned domains)", Run: E15RestrictedLemmas},
		{ID: "E16", Title: "BCAST(1) vs BCAST(log n) exchange rate", Run: E16WideMessages},
		{ID: "E17", Title: "Discussion workloads: connectivity, triangles", Run: E17DiscussionProblems},
		{ID: "E18", Title: "Exact n = 5 planted-clique lower-bound tables", Run: E18ExactLowerBound},
		{ID: "E19", Title: "Appendix B protocol vs spectral recovery, paired", Run: E19SpectralVsDegree},
		{ID: "E20", Title: "BP/AMP phase sweep around k = √n", Run: E20MessagePassingSweep},
	}
}

// ByID returns the registry entry with the given id.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// f builds a float cell with the harness' default 4-decimal precision.
func f(v float64) result.Cell { return result.Float(v) }

// fp builds a float cell with explicit precision.
func fp(v float64, prec int) result.Cell { return result.FloatPrec(v, prec) }

// d builds an int cell.
func d(v int) result.Cell { return result.Int(v) }

// s builds a string cell.
func s(v string) result.Cell { return result.Str(v) }

// sf builds a string cell from a format string.
func sf(format string, args ...any) result.Cell { return result.Strf(format, args...) }

// boolCell builds a yes/NO verdict cell.
func boolCell(b bool) result.Cell { return result.Bool(b) }
