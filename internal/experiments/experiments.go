// Package experiments contains the reproduction harness: one entry point
// per experiment in the All registry (E1..E17), each regenerating the
// empirical counterpart of a theorem, lemma, or claim in the paper. Every
// experiment returns a Table whose rows print "measured vs predicted" so
// the results document can be regenerated mechanically (cmd/experiments)
// and the root benchmarks can assert the shapes.
package experiments

import (
	"fmt"
	"io"
	"runtime"
	"strings"
)

// Config controls experiment scale and reproducibility.
type Config struct {
	// Seed drives every sampler; equal seeds give identical tables.
	Seed uint64
	// Quick shrinks trial counts for CI-speed runs; shapes remain visible
	// but error bars widen.
	Quick bool
	// Workers sizes the goroutine pools of the measurement engines
	// (Monte-Carlo estimators, exact enumeration, detector/attack
	// trials); 0 means runtime.GOMAXPROCS(0). Tables for a fixed Seed are
	// identical for every Workers value — parallelism is only a
	// wall-clock knob.
	Workers int
}

// workers resolves the configured pool size.
func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// trials scales a full-run trial count down in quick mode.
func (c Config) trials(full int) int {
	if c.Quick {
		t := full / 5
		if t < 4 {
			t = 4
		}
		return t
	}
	return full
}

// Table is one experiment's rendered result.
type Table struct {
	// ID is the experiment id (E1..E14).
	ID string
	// Title names the reproduced statement.
	Title string
	// Claim restates what the paper asserts.
	Claim string
	// Columns are the header cells.
	Columns []string
	// Rows are the data cells (already formatted).
	Rows [][]string
	// Shape states the qualitative property that must hold and whether it
	// did.
	Shape string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table as GitHub-flavoured markdown.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "### %s — %s\n\n", t.ID, t.Title)
	fmt.Fprintf(w, "Paper claim: %s\n\n", t.Claim)
	fmt.Fprintf(w, "| %s |\n", strings.Join(t.Columns, " | "))
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | "))
	for _, row := range t.Rows {
		fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | "))
	}
	if t.Shape != "" {
		fmt.Fprintf(w, "\nShape: %s\n", t.Shape)
	}
	fmt.Fprintln(w)
}

// Experiment pairs an id with its runner.
type Experiment struct {
	// ID is the registry experiment id (E1..E17).
	ID string
	// Title names the reproduced statement.
	Title string
	// Run executes the experiment.
	Run func(cfg Config) (*Table, error)
}

// All returns every experiment in index order.
func All() []Experiment {
	return []Experiment{
		{ID: "E1", Title: "Lemma 1.10: single-coordinate restriction", Run: E1SingleBitLemma},
		{ID: "E2", Title: "Lemma 1.8: clique-restriction distance", Run: E2CliqueRestriction},
		{ID: "E3", Title: "Theorem 1.6 / Cor 1.7: one-round planted clique", Run: E3OneRoundPlantedClique},
		{ID: "E4", Title: "Theorem 4.1: multi-round planted clique", Run: E4MultiRoundPlantedClique},
		{ID: "E5", Title: "Lemma 5.2: Fourier inequality", Run: E5FourierLemma},
		{ID: "E6", Title: "Theorem 5.3: toy PRG fools low rounds", Run: E6ToyPRG},
		{ID: "E7", Title: "Theorem 1.3/5.4: full PRG", Run: E7FullPRG},
		{ID: "E8", Title: "Theorem 1.4: average-case rank hardness", Run: E8AverageCaseRank},
		{ID: "E9", Title: "Theorem 1.5: time hierarchy", Run: E9TimeHierarchy},
		{ID: "E10", Title: "Theorem 8.1: seed-length lower bound", Run: E10SeedLowerBound},
		{ID: "E11", Title: "Theorem A.1: Newman in BCAST(1)", Run: E11Newman},
		{ID: "E12", Title: "Theorem B.1: planted clique recovery", Run: E12CliqueRecovery},
		{ID: "E13", Title: "Claims 5/8: support concentration", Run: E13SupportConcentration},
		{ID: "E14", Title: "Ablation: seed-size security crossover", Run: E14SeedCrossover},
		{ID: "E15", Title: "Lemmas 4.3/4.4 and Claim 3 (conditioned domains)", Run: E15RestrictedLemmas},
		{ID: "E16", Title: "BCAST(1) vs BCAST(log n) exchange rate", Run: E16WideMessages},
		{ID: "E17", Title: "Discussion workloads: connectivity, triangles", Run: E17DiscussionProblems},
	}
}

// f formats a float compactly for table cells.
func f(v float64) string { return fmt.Sprintf("%.4f", v) }

// d formats an int.
func d(v int) string { return fmt.Sprintf("%d", v) }
