package experiments

import (
	"repro/internal/f2"
	"repro/internal/rankprot"
	"repro/internal/rng"
)

// E8AverageCaseRank reproduces Theorem 1.4's ingredients: (a) the rank
// distribution of uniform GF(2) matrices against Kolchin's Q_s constants
// (the table quoted in the proof, Q₀ ≈ 0.2887880951); (b) the Theorem 1.4
// hard distribution [X | X·b] is never full rank; (c) an n/20-round
// protocol's accuracy on F_full-rank stays below 0.99.
func E8AverageCaseRank(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E8",
		Title: "average-case hardness of F_full-rank",
		Claim: "no n/20-round protocol computes full-rank with probability > 0.99 over uniform inputs",
		Columns: []string{"quantity", "n", "measured", "predicted",
			"notes"},
	}
	r := rng.New(cfg.Seed + 11)
	const n = 24
	trials := cfg.trials(1500)

	// (a) Rank-deficiency distribution.
	counts := make(map[int]int)
	for i := 0; i < trials; i++ {
		m := f2.Random(n, n, r)
		counts[n-m.Rank()]++
	}
	shapeOK := true
	for s := 0; s <= 2; s++ {
		emp := float64(counts[s]) / float64(trials)
		pred := f2.KolchinQ(s)
		if abs(emp-pred) > 0.06 {
			shapeOK = false
		}
		t.AddRow(sf("P[rank = n−%d]", s), d(n), f(emp), f(pred),
			sf("finite-n exact %.6f", f2.RankProbability(n, n, n-s)))
	}

	// (b) The hard distribution is always rank deficient.
	deficient := 0
	bTrials := cfg.trials(300)
	for i := 0; i < bTrials; i++ {
		rows, _ := rankprot.BracketedInputs(n, r)
		m, err := f2.FromRows(rows)
		if err != nil {
			return nil, err
		}
		if !m.FullRank() {
			deficient++
		}
	}
	if deficient != bTrials {
		shapeOK = false
	}
	t.AddRow(s("P[rank < n] under [X|X·b]"), d(n), f(float64(deficient)/float64(bTrials)),
		s("1.0000"), s("Theorem 1.4 hard distribution"))

	// (c) Truncated protocol accuracy at n/20 rounds.
	rounds := n / 20
	if rounds < 1 {
		rounds = 1
	}
	p, err := rankprot.NewTruncated(n, n, rounds)
	if err != nil {
		return nil, err
	}
	rep, err := rankprot.MeasureAccuracy(p, cfg.trials(500), cfg.workers(), r)
	if err != nil {
		return nil, err
	}
	if rep.Accuracy >= 0.99 {
		shapeOK = false
	}
	t.AddRow(sf("accuracy of %d-round protocol", rounds), d(n), f(rep.Accuracy),
		s("< 0.99"), sf("Bayes ceiling 1−Q₀ = %.4f", 1-f2.KolchinQ(0)))

	if shapeOK {
		t.Shape = "holds: empirical rank law matches Kolchin; hard distribution always deficient; low-round accuracy ≈ 1−Q₀ < 0.99"
	} else {
		t.Shape = "SHAPE MISMATCH"
	}
	return t, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// E9TimeHierarchy reproduces Theorem 1.5's staircase: accuracy of the
// top-k×k-minor protocol as a function of allowed rounds — flat near
// 1 − Q₀ below k, exactly 1 at k.
func E9TimeHierarchy(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E9",
		Title:   "average-case time hierarchy",
		Claim:   "k rounds compute the top-k×k-minor rank exactly; k/20 rounds cannot exceed 0.99 accuracy",
		Columns: []string{"n", "k", "rounds", "accuracy", "regime"},
	}
	r := rng.New(cfg.Seed + 12)
	trials := cfg.trials(400)
	shapeOK := true
	for _, k := range []int{10, 20} {
		n := 2 * k
		schedule := []struct {
			rounds int
			regime string
		}{
			{k/20 + 1, "k/20 (hierarchy lower side)"},
			{k / 2, "k/2"},
			{k - 1, "k−1"},
			{k, "k (exact protocol)"},
		}
		for _, sc := range schedule {
			p, err := rankprot.NewTruncated(n, k, sc.rounds)
			if err != nil {
				return nil, err
			}
			rep, err := rankprot.MeasureAccuracy(p, trials, cfg.workers(), r)
			if err != nil {
				return nil, err
			}
			if sc.rounds == k && rep.Accuracy != 1 {
				shapeOK = false
			}
			if sc.rounds < k && rep.Accuracy >= 0.99 {
				shapeOK = false
			}
			t.AddRow(d(n), d(k), d(sc.rounds), f(rep.Accuracy), s(sc.regime))
		}
	}
	if shapeOK {
		t.Shape = "holds: accuracy ≈ 1−Q₀ for every truncation, exactly 1.0 at k rounds"
	} else {
		t.Shape = "SHAPE MISMATCH"
	}
	return t, nil
}
