package experiments

import (
	"math"

	"repro/internal/cliquefind"
	"repro/internal/recover"
	"repro/internal/rng"
)

// E19SpectralVsDegree compares the paper's BCAST(1) degree-counting
// protocol (Appendix B) head to head with offline spectral recovery —
// power iteration on the centered adjacency — on IDENTICAL planted
// instances. Each (n, k) case samples one shared instance set and hands
// the same adjacencies to both engines, so the comparison is paired:
// every difference between the two rows of a case is algorithmic, not
// sampling noise. The protocol pays O(n/k·log²n) broadcast rounds where
// the spectral engine pays tens of dense matvec sweeps; at k = 4√n and
// above both recover exactly, which is the point — the paper's lower
// bounds are about the *communication* model, not about planted cliques
// being statistically hard at this size.
func E19SpectralVsDegree(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E19",
		Title: "Appendix B protocol vs spectral recovery on shared instances",
		Claim: "paired on identical instances, BCAST(1) degree counting and offline power iteration both recover exactly for k ≥ 4√n",
		Columns: []string{"n", "k", "engine", "trials",
			"exact recovery", "mean overlap", "cost"},
	}
	cases := []struct{ n, k int }{
		{128, 45}, {128, 64}, {256, 64}, {256, 128},
	}
	if cfg.Quick {
		cases = []struct{ n, k int }{{96, 39}, {128, 45}}
	}
	trials := cfg.trials(10)
	r := rng.New(cfg.Seed + 19)
	spectral := recover.NewSpectral()
	ok := true
	for _, c := range cases {
		if err := cfg.Err(); err != nil {
			return nil, err
		}
		base := r.Uint64()
		insts, err := cliquefind.SampleSharedInstances(c.n, c.k, trials, cfg.workers(), base, true)
		if err != nil {
			return nil, err
		}
		deg, err := cliquefind.MeasureRecoveryOn(c.n, c.k, cfg.workers(), insts)
		if err != nil {
			return nil, err
		}
		spec, err := recover.Measure(spectral, c.k, cfg.workers(), insts)
		if err != nil {
			return nil, err
		}
		t.AddRow(d(c.n), d(c.k), s("degree-bcast1"), d(trials),
			f(deg.ExactRate()), fp(deg.MeanOverlap(), 2), sf("%d rounds", deg.Rounds))
		t.AddRow(d(c.n), d(c.k), s("spectral"), d(trials),
			f(spec.ExactRate()), fp(spec.MeanOverlap(), 2), sf("%.1f iters", spec.MeanIters()))
		if deg.ExactRate() < 0.9 || spec.ExactRate() < 0.9 {
			ok = false
		}
	}
	if ok {
		t.Shape = "holds: both engines recover exactly on the shared instances; cost differs by model, not outcome"
	} else {
		t.Shape = "SHAPE MISMATCH: an engine fell below 0.9 exact recovery at k ≥ 4√n"
	}
	return t, nil
}

// E20MessagePassingSweep sweeps BP and AMP through the algorithmic
// phase transition: k = c·√n for c ∈ {1, 2, 3, 4}. Both engines run on
// the same shared instance set per k, so the sweep shows WHERE each
// message-passing scheme's basin ends — at c = 1 (the k ≈ √n threshold
// the paper's PRG construction leans on) the polynomial-denoiser AMP
// starts losing trials while dense BP, which keeps the full n² message
// state instead of AMP's n-dimensional summary, holds on longer. By
// c = 4 both recover essentially always; that easy regime is the E19
// operating point.
func E20MessagePassingSweep(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E20",
		Title: "BP/AMP phase sweep around k = √n",
		Claim: "message passing recovers the planted clique for k = c·√n once c is a small constant; success decays toward the √n threshold",
		Columns: []string{"n", "k", "c", "engine", "trials",
			"exact recovery", "overlap/k", "mean iters"},
	}
	n := 512
	if cfg.Quick {
		n = 128
	}
	trials := cfg.trials(10)
	r := rng.New(cfg.Seed + 20)
	engines := []recover.Engine{recover.NewBP(), recover.NewAMP()}
	rootN := math.Sqrt(float64(n))
	// first/last exact counts per engine, for the shape verdict
	first := make(map[string]float64)
	last := make(map[string]float64)
	for _, c := range []int{1, 2, 3, 4} {
		if err := cfg.Err(); err != nil {
			return nil, err
		}
		k := int(float64(c) * rootN)
		base := r.Uint64()
		insts, err := cliquefind.SampleSharedInstances(n, k, trials, cfg.workers(), base, true)
		if err != nil {
			return nil, err
		}
		for _, e := range engines {
			rep, err := recover.Measure(e, k, cfg.workers(), insts)
			if err != nil {
				return nil, err
			}
			t.AddRow(d(n), d(k), d(c), s(e.Name()), d(trials),
				f(rep.ExactRate()), fp(rep.MeanOverlap()/float64(k), 2),
				fp(rep.MeanIters(), 1))
			if c == 1 {
				first[e.Name()] = rep.ExactRate()
			}
			if c == 4 {
				last[e.Name()] = rep.ExactRate()
			}
		}
	}
	ok := true
	for _, e := range engines {
		if last[e.Name()] < 0.9 || last[e.Name()] < first[e.Name()] {
			ok = false
		}
	}
	if ok {
		t.Shape = "holds: exact recovery ≥ 0.9 at c = 4 for both engines and no engine does worse at c = 4 than at c = 1"
	} else {
		t.Shape = "SHAPE MISMATCH: message passing failed in the easy regime c = 4"
	}
	return t, nil
}
