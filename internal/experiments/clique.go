package experiments

import (
	"math"

	"repro/internal/cliquefind"
	"repro/internal/lowerbound"
	"repro/internal/result"
	"repro/internal/rng"
)

// E3OneRoundPlantedClique measures the advantage of natural one-round
// protocols across the clique-size spectrum: at k = n^{1/4} every protocol
// is blind (Corollary 1.7); at k ≳ √(n log n) degree counting wins. The
// edge-parity protocol is a provably-zero-advantage control.
func E3OneRoundPlantedClique(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E3",
		Title: "one-round planted-clique distinguishing",
		Claim: "no one-round BCAST(1) protocol has Ω(1) advantage at k = O(n^{1/4−ε}); degree counting succeeds at k ≳ √(n·log n)",
		Columns: []string{"n", "k", "regime", "protocol", "advantage",
			"Thm 1.6 bound k²/√n"},
	}
	trials := cfg.trials(60)
	r := rng.New(cfg.Seed + 4)
	shapeOK := true
	for _, n := range []int{64, 256, 1024} {
		bands := lowerbound.RangeFor(n)
		cases := []struct {
			k      int
			regime string
		}{
			{int(bands.FourthRoot), "n^{1/4} (hard)"},
			{int(bands.RootN), "√n (transition)"},
			{int(3 * math.Sqrt(float64(n)*math.Log(float64(n)))), "3√(n·ln n) (easy)"},
		}
		for _, c := range cases {
			if err := cfg.Err(); err != nil {
				return nil, err
			}
			if c.k < 1 {
				c.k = 1
			}
			if c.k > n {
				c.k = n
			}
			deg := &cliquefind.DegreeDetector{N: n, K: c.k}
			rep, err := cliquefind.MeasureDetector(deg, n, c.k, trials, cfg.workers(), r)
			if err != nil {
				return nil, err
			}
			t.AddRow(d(n), d(c.k), s(c.regime), s(deg.Name()),
				f(rep.Advantage()).WithErr(1/math.Sqrt(float64(trials))),
				f(lowerbound.Theorem16Bound(n, c.k)).WithBound(result.BoundUpper))
			switch c.regime {
			case "n^{1/4} (hard)":
				if rep.Advantage() > 0.35 {
					shapeOK = false
				}
			case "3√(n·ln n) (easy)":
				if rep.Advantage() < 0.8 {
					shapeOK = false
				}
			}
		}
		// Zero-advantage control at the easy k.
		par := &cliquefind.EdgeParityDetector{N: n}
		kEasy := int(3 * math.Sqrt(float64(n)*math.Log(float64(n))))
		if kEasy > n {
			kEasy = n
		}
		rep, err := cliquefind.MeasureDetector(par, n, kEasy, trials, cfg.workers(), r)
		if err != nil {
			return nil, err
		}
		t.AddRow(d(n), d(kEasy), s("control"), s(par.Name()),
			f(rep.Advantage()).WithErr(1/math.Sqrt(float64(trials))), s("0 (exact)"))
	}
	if shapeOK {
		t.Shape = "holds: blind at n^{1/4}, near-perfect at 3√(n·ln n); parity control at noise level"
	} else {
		t.Shape = "SHAPE MISMATCH: advantage bands not as predicted"
	}
	return t, nil
}

// E4MultiRoundPlantedClique watches advantage grow with rounds for the
// total-degree protocol at fixed (n, k), against the Theorem 4.1 budget.
func E4MultiRoundPlantedClique(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E4",
		Title: "multi-round planted-clique distinguishing",
		Claim: "j-round transcripts differ by at most O(j·k²·√((j+log n)/n)); more rounds buy more advantage until the budget saturates",
		Columns: []string{"n", "k", "rounds j", "advantage",
			"Thm 4.1 bound"},
	}
	trials := cfg.trials(40)
	r := rng.New(cfg.Seed + 5)
	const n, k = 256, 40
	prev := -1.0
	monotone := true
	for _, j := range []int{1, 2, 4, 8} {
		if err := cfg.Err(); err != nil {
			return nil, err
		}
		det := &cliquefind.TotalDegreeDetector{N: n, K: k, J: j}
		rep, err := cliquefind.MeasureDetector(det, n, k, trials, cfg.workers(), r)
		if err != nil {
			return nil, err
		}
		t.AddRow(d(n), d(k), d(j), f(rep.Advantage()).WithErr(1/math.Sqrt(float64(trials))),
			f(lowerbound.Theorem41Bound(n, k, j)).WithBound(result.BoundUpper))
		if rep.Advantage() < prev-0.25 {
			monotone = false
		}
		prev = rep.Advantage()
	}
	if monotone {
		t.Shape = "holds: advantage non-decreasing in rounds, below the (loose) Thm 4.1 budget"
	} else {
		t.Shape = "SHAPE MISMATCH: advantage collapsed as rounds grew"
	}
	return t, nil
}

// E12CliqueRecovery runs the Appendix B protocol across (n, k) and reports
// round counts, exact-recovery rate, and the Theorem B.1 budget n/k·log²n.
func E12CliqueRecovery(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E12",
		Title: "Appendix B sampling protocol",
		Claim: "O(n/k·polylog n) rounds recover the planted clique with probability ≥ 1 − 1/n²",
		Columns: []string{"n", "k", "rounds", "budget 2n·log²n/k", "trials",
			"exact recovery", "mean overlap"},
	}
	trials := cfg.trials(15)
	r := rng.New(cfg.Seed + 6)
	cases := []struct{ n, k int }{
		{96, 48}, {128, 64}, {128, 96}, {192, 96}, {256, 128},
	}
	shapeOK := true
	for _, c := range cases {
		if err := cfg.Err(); err != nil {
			return nil, err
		}
		rep, err := cliquefind.MeasureRecovery(c.n, c.k, trials, cfg.workers(), r)
		if err != nil {
			return nil, err
		}
		lg := math.Log2(float64(c.n))
		budget := 2 * float64(c.n) * lg * lg / float64(c.k)
		if rep.ExactRate() < 0.8 {
			shapeOK = false
		}
		t.AddRow(d(c.n), d(c.k), d(rep.Rounds), f(budget).WithBound(result.BoundUpper),
			d(trials), f(rep.ExactRate()), fp(rep.MeanOverlap(), 2))
	}
	if shapeOK {
		t.Shape = "holds: near-certain exact recovery; rounds track 2n·log²n/k and fall as k grows"
	} else {
		t.Shape = "SHAPE MISMATCH: recovery rate below expectation"
	}
	return t, nil
}
