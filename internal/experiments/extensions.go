package experiments

import (
	"math"

	"repro/internal/cliquefind"
	"repro/internal/fourier"
	"repro/internal/frontier"
	"repro/internal/graph"
	"repro/internal/lowerbound"
	"repro/internal/result"
	"repro/internal/rng"
)

// E15RestrictedLemmas measures the conditioned-domain machinery of
// Section 4 — Lemma 4.4 (single coordinate, domain D of deficit t),
// Lemma 4.3 (k coordinates), and the Claim 3 entropy-gap walk — the three
// technical steps the multi-round planted-clique bound runs on.
func E15RestrictedLemmas(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E15",
		Title: "restricted-domain lemmas (4.3, 4.4) and Claim 3 walk",
		Claim: "for |D| ≥ 2^{n−t}: E_i||f(U_D)−f(U_D^[i])|| ≤ O(√(t/n)); E_C ≤ O(k√(t/n)); restriction walks exceed gap 3t with probability O(tℓ/n)",
		Columns: []string{"n", "quantity", "domain density", "measured",
			"bound", "holds"},
	}
	r := rng.New(cfg.Seed + 14)
	const n = 14
	funcs := cfg.trials(10)
	shapeOK := true

	for _, density := range []float64{0.5, 0.1} {
		size := uint64(1) << n
		member := make([]bool, size)
		for x := range member {
			member[x] = r.Bernoulli(density)
		}
		dom := func(x uint64) bool { return member[x] }
		deficit := fourier.EntropyDeficit(n, dom)

		// Lemma 4.4.
		mean44 := 0.0
		for i := 0; i < funcs; i++ {
			fn := fourier.FromBool(n, func(uint64) bool { return r.Bool() })
			mean44 += fn.InfluenceBoundOn(dom)
		}
		mean44 /= float64(funcs)
		bound44 := 2*deficit/float64(n) + 10*math.Sqrt((deficit+1)/float64(n))
		ok44 := mean44 <= bound44
		shapeOK = shapeOK && ok44
		t.AddRow(d(n), s("Lemma 4.4 E_i||·||"), f(density), f(mean44),
			f(bound44).WithBound(result.BoundUpper), boolCell(ok44))

		// Lemma 4.3 with k = 2.
		const k = 2
		mean43 := 0.0
		for i := 0; i < funcs; i++ {
			fn := fourier.FromBool(n, func(uint64) bool { return r.Bool() })
			mean43 += fn.SubsetRestrictionDistanceOn(dom, k, forEachSubset)
		}
		mean43 /= float64(funcs)
		bound43 := 12 * float64(k) * math.Sqrt((deficit+1)/float64(n))
		ok43 := mean43 <= bound43
		shapeOK = shapeOK && ok43
		t.AddRow(d(n), sf("Lemma 4.3 E_C||·|| (k=%d)", k), f(density),
			f(mean43), f(bound43).WithBound(result.BoundUpper), boolCell(ok43))

		// Claim 3 walk with ℓ = 3.
		const ell = 3
		stats, err := lowerbound.MeasureEntropyGapWalk(n, ell, cfg.trials(300), dom, r)
		if err != nil {
			return nil, err
		}
		boundC3 := 5 * lowerbound.Claim3Bound(n, ell, stats.StartGap)
		okC3 := stats.ExceedRate <= math.Max(boundC3, 0.05)
		shapeOK = shapeOK && okC3
		t.AddRow(d(n), sf("Claim 3 P[Z>3t] (ℓ=%d, t=%.2f)", ell, stats.StartGap),
			f(density), f(stats.ExceedRate), f(boundC3).WithBound(result.BoundUpper), boolCell(okC3))
	}
	if shapeOK {
		t.Shape = "holds: all three conditioned-domain bounds satisfied on random large domains"
	} else {
		t.Shape = "VIOLATION: a conditioned-domain bound failed"
	}
	return t, nil
}

// forEachSubset adapts dist.ForEachSubset without importing dist here.
func forEachSubset(n, k int, fn func([]int)) {
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	if k < 0 || k > n {
		return
	}
	for {
		fn(idx)
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			return
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

// E16WideMessages measures the BCAST(1) ↔ BCAST(log n) exchange rate the
// paper's footnotes assert: one wide round carries log n narrow rounds,
// with matching protocol power and matching total bits.
func E16WideMessages(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E16",
		Title: "BCAST(1) vs BCAST(log n)",
		Claim: "lower/upper bounds transfer between widths at a log n exchange rate (footnotes 1-2)",
		Columns: []string{"n", "k", "protocol pair", "wide advantage/rounds",
			"narrow advantage/rounds", "match"},
	}
	r := rng.New(cfg.Seed + 15)
	trials := cfg.trials(30)
	shapeOK := true
	for _, c := range []struct{ n, k int }{{128, 48}, {256, 64}} {
		wide, narrow, err := cliquefind.WideNarrowGap(c.n, c.k, trials, cfg.workers(), r)
		if err != nil {
			return nil, err
		}
		match := math.Abs(wide-narrow) <= 0.3
		shapeOK = shapeOK && match
		t.AddRow(d(c.n), d(c.k), s("degree detector (1 wide vs log n narrow rounds)"),
			f(wide), f(narrow), boolCell(match))
	}
	// Full-exchange round budgets.
	for _, n := range []int{64, 256} {
		narrowP := &frontier.FullExchangeProtocol{N: n}
		wideP := &frontier.FullExchangeProtocol{N: n, Wide: true}
		ratio := float64(narrowP.Rounds()) / float64(wideP.Rounds())
		lg := math.Ceil(math.Log2(float64(n)))
		match := math.Abs(ratio-lg) <= 1.5
		shapeOK = shapeOK && match
		t.AddRow(d(n), s("-"), s("full graph exchange rounds"),
			d(wideP.Rounds()), d(narrowP.Rounds()),
			sf("ratio %.1f ≈ log n = %.0f (%s)", ratio, lg, boolCell(match)))
	}
	if shapeOK {
		t.Shape = "holds: equal power at a log n round exchange rate"
	} else {
		t.Shape = "SHAPE MISMATCH"
	}
	return t, nil
}

// E17DiscussionProblems charts the Discussion section's proposed next
// targets: connectivity (round budget vs graph diameter) and triangle
// counting (advantage bands mirroring the planted-clique thresholds).
func E17DiscussionProblems(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E17",
		Title: "discussion-section workloads: connectivity and triangle counting",
		Claim: "open problems for the technique; upper-bound protocols chart where they succeed",
		Columns: []string{"workload", "n", "parameter", "result",
			"expected"},
	}
	r := rng.New(cfg.Seed + 16)
	shapeOK := true

	// Connectivity: dense G(n,p) certified in O(log n) rounds; the path
	// needs diameter rounds.
	const n = 64
	denseOK := true
	for trial := 0; trial < cfg.trials(10); trial++ {
		g := graph.SampleGnp(n, 0.3, r)
		_, comps := g.ConnectedComponents()
		got, err := frontier.RunConnectivity(g, 8, r.Uint64())
		if err != nil {
			return nil, err
		}
		if got != (comps == 1) {
			denseOK = false
		}
	}
	shapeOK = shapeOK && denseOK
	t.AddRow(s("connectivity"), d(n), s("G(n,0.3), 8 rounds"), boolCell(denseOK), s("correct (diameter ≈ 2)"))

	path := graph.PathGraph(16)
	shortVerdict, err := frontier.RunConnectivity(path, 3, 1)
	if err != nil {
		return nil, err
	}
	longVerdict, err := frontier.RunConnectivity(path, 16, 1)
	if err != nil {
		return nil, err
	}
	pathOK := !shortVerdict && longVerdict
	shapeOK = shapeOK && pathOK
	t.AddRow(s("connectivity"), s("16"), s("path, 3 vs 16 rounds"),
		sf("3r:%v 16r:%v", shortVerdict, longVerdict), s("false then true (needs diameter rounds)"))

	// Triangle counting on planted inputs.
	for _, c := range []struct {
		k      int
		regime string
		strong bool
	}{
		{3, "k = n^{1/4} (hard)", false},
		{28, "k > √n (easy)", true},
	} {
		adv, err := frontier.MeasureTriangleDetector(n, c.k, cfg.trials(12), true, r)
		if err != nil {
			return nil, err
		}
		ok := adv >= 0.8
		if !c.strong {
			ok = adv <= 0.4
		}
		shapeOK = shapeOK && ok
		want := "advantage ≈ 0 (Thm 1.1 regime)"
		if c.strong {
			want = "advantage ≈ 1"
		}
		t.AddRow(s("triangle counting"), d(n), s(c.regime), f(adv), s(want))
	}

	// MST on a complete graph with random weights (Borůvka in the clique).
	wc, err := frontier.NewRandomWeights(48, r)
	if err != nil {
		return nil, err
	}
	tree, err := frontier.RunMST(wc, r.Uint64())
	if err != nil {
		return nil, err
	}
	ref := wc.ReferenceMST()
	mstOK := len(tree) == len(ref)
	for i := 0; mstOK && i < len(tree); i++ {
		mstOK = tree[i] == ref[i]
	}
	shapeOK = shapeOK && mstOK
	t.AddRow(s("MST (Borůvka)"), s("48"), sf("%d rounds, width %d",
		frontier.NewMST(wc).Rounds(), frontier.NewMST(wc).MessageBits()),
		boolCell(mstOK), s("tree equals Prim's (log n rounds)"))

	// Stochastic block model communities.
	for _, c := range []struct {
		pin, pout float64
		regime    string
		strong    bool
	}{
		{0.9, 0.1, "p_in=0.9, p_out=0.1 (separated)", true},
		{0.5, 0.5, "p_in=p_out (null)", false},
	} {
		m := frontier.SBM{N: n, PIn: c.pin, POut: c.pout}
		adv, err := frontier.MeasureCommunityDetector(m, cfg.trials(15), r)
		if err != nil {
			return nil, err
		}
		ok := adv >= 0.8
		if !c.strong {
			ok = adv <= 0.4
		}
		shapeOK = shapeOK && ok
		want := "advantage ≈ 0 (no signal)"
		if c.strong {
			want = "advantage ≈ 1"
		}
		t.AddRow(s("SBM communities"), d(n), s(c.regime), f(adv), s(want))
	}
	if shapeOK {
		t.Shape = "holds: connectivity tracks diameter; triangle statistic mirrors the planted-clique thresholds"
	} else {
		t.Shape = "SHAPE MISMATCH"
	}
	return t, nil
}
