package experiments

import (
	"repro/internal/bcast"
	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/lowerbound"
	"repro/internal/result"
	"repro/internal/rng"
)

// revealBitsProtocol broadcasts input bits round-robin: the strongest
// oblivious low-round probe (it publishes raw input bits), used to measure
// transcript TV under PRG vs uniform inputs.
type revealBitsProtocol struct {
	rounds int
}

var _ bcast.Protocol = (*revealBitsProtocol)(nil)

func (p *revealBitsProtocol) Name() string     { return "reveal-bits" }
func (p *revealBitsProtocol) MessageBits() int { return 1 }
func (p *revealBitsProtocol) Rounds() int      { return p.rounds }
func (p *revealBitsProtocol) NewNode(_ int, input bitvec.Vector, _ *rng.Stream) bcast.Node {
	sent := 0
	return bcast.NodeFunc(func(*bcast.Transcript) uint64 {
		b := input.Bit(sent % input.Len())
		sent++
		return b
	})
}

// E6ToyPRG measures the toy PRG two ways: (a) the transcript TV of a
// low-round revealing protocol under case A (uniform) vs case B (PRG),
// which Theorem 5.3 says vanishes as k grows; and (b) the (k+1)-round
// consistency attack, which breaks it completely — bracketing the security
// of the generator from both sides.
func E6ToyPRG(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E6",
		Title: "toy PRG (x, x·b) vs uniform",
		Claim: "j ≤ k/10 rounds distinguish with probability O(j·n·2^{−k/9}); k+1 rounds suffice to break",
		Columns: []string{"n", "k", "probe", "rounds", "measured",
			"Thm 5.3 bound"},
	}
	r := rng.New(cfg.Seed + 7)
	samples := cfg.trials(20000)
	const n = 8
	reveal := &revealBitsProtocol{rounds: 1}

	// Estimator noise floor: TV of two independent case-A sample sets.
	fam := lowerbound.ToyPRGFamily{N: n, K: 10}
	floor, err := lowerbound.EstimateTranscriptTV(reveal, fam.SampleReference, fam.SampleReference, n, samples, cfg.workers(), r)
	if err != nil {
		return nil, err
	}
	t.AddRow(d(n), s("-"), s("estimator noise floor"), s("1"), f(floor), s("-"))

	prev := 2.0
	decayOK := true
	for _, k := range []int{4, 8, 12, 16} {
		famK := lowerbound.ToyPRGFamily{N: n, K: k}
		tv, err := lowerbound.EstimateTranscriptTV(reveal,
			func(s *rng.Stream) []bitvec.Vector { return lowerbound.SampleMixture(famK, s) },
			famK.SampleReference, n, samples, cfg.workers(), r)
		if err != nil {
			return nil, err
		}
		t.AddRow(d(n), d(k), s("1-round reveal transcript TV"), s("1"), f(tv),
			f(lowerbound.Theorem53Bound(n, k, 1)).WithBound(result.BoundUpper))
		if tv > prev+0.05 {
			decayOK = false
		}
		prev = tv

		// The breaking side needs more processors than seed bits: with
		// n ≤ k the system x_i·b = y_i is underdetermined and uniform
		// inputs are consistent too (false-accept rate 2^{k−n}).
		nAttack := k + 16
		gen := core.ToyPRG{K: k}
		attack := &core.ToyConsistencyAttack{N: nAttack, K: k}
		rep, err := core.MeasureAttack(attack,
			func(s *rng.Stream) ([]bitvec.Vector, error) {
				outs, _, err := gen.Generate(nAttack, s)
				return outs, err
			},
			func(s *rng.Stream) ([]bitvec.Vector, error) {
				return core.UniformInputs(nAttack, k+1, s), nil
			},
			cfg.trials(100), cfg.workers(), r)
		if err != nil {
			return nil, err
		}
		if rep.Advantage() < 0.9 {
			decayOK = false
		}
		t.AddRow(d(nAttack), d(k), s("consistency attack advantage"), d(k+1),
			f(rep.Advantage()), s("breaks (Thm 8.1)"))
	}
	if decayOK {
		t.Shape = "holds: low-round TV decays toward the noise floor as k grows; k+1 rounds always break"
	} else {
		t.Shape = "SHAPE MISMATCH: low-round distance grew with k"
	}
	return t, nil
}

// E7FullPRG exercises Theorem 1.3's construction: round/seed accounting,
// the defining low-rank property, and the fooling/breaking contrast for
// the full generator.
func E7FullPRG(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E7",
		Title: "full PRG (x, xᵀM) construction and security",
		Claim: "O(k) private bits and O(k·(m−k)/n) = O(k) rounds give m pseudorandom bits per processor, secure for Ω(k) rounds",
		Columns: []string{"n", "k", "m", "construction rounds", "seed bits/proc",
			"suffix rank (≤k?)", "rank-attack advantage"},
	}
	r := rng.New(cfg.Seed + 8)
	trials := cfg.trials(60)
	shapeOK := true
	cases := []struct{ n, k, m int }{
		{64, 8, 64}, {64, 8, 128}, {64, 16, 128}, {128, 16, 256},
	}
	for _, c := range cases {
		gen := core.FullPRG{K: c.k, M: c.m}
		proto := &core.ConstructionProtocol{N: c.n, Gen: gen}

		// Run the construction once to confirm the low-rank invariant.
		inputs := proto.Inputs(r)
		res, err := bcast.RunRounds(proto, inputs, r.Uint64())
		if err != nil {
			return nil, err
		}
		rank, err := core.SuffixRank(res.Outputs(), c.k)
		if err != nil {
			return nil, err
		}
		lowRank := rank <= c.k
		if !lowRank {
			shapeOK = false
		}

		attack := &core.RankAttack{N: c.n, K: c.k}
		rep, err := core.MeasureAttack(attack,
			func(s *rng.Stream) ([]bitvec.Vector, error) {
				outs, _, err := gen.Generate(c.n, s)
				return outs, err
			},
			func(s *rng.Stream) ([]bitvec.Vector, error) {
				return core.UniformInputs(c.n, c.m, s), nil
			},
			trials, cfg.workers(), r)
		if err != nil {
			return nil, err
		}
		if rep.Advantage() < 0.9 {
			shapeOK = false
		}
		if proto.Rounds() > 4*c.k {
			shapeOK = false // construction rounds must stay O(k) for m=O(n)
		}
		t.AddRow(d(c.n), d(c.k), d(c.m), d(proto.Rounds()), d(proto.InputBits()),
			boolCell(lowRank), f(rep.Advantage()))
	}
	if shapeOK {
		t.Shape = "holds: O(k) rounds and seed; outputs rank-≤k; (k+1)-round attack breaks with advantage ≈ 1"
	} else {
		t.Shape = "SHAPE MISMATCH"
	}
	return t, nil
}

// E10SeedLowerBound demonstrates Theorem 8.1: every seed-k PRG is broken
// by an O(k)-round protocol — here the rank attack against our own
// generator, with acceptance statistics on both sides.
func E10SeedLowerBound(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E10",
		Title: "seed-length optimality attack",
		Claim: "a (k+1)-round protocol accepts every PRG run and rejects uniform inputs except with probability 2^{−Ω(n)}",
		Columns: []string{"n", "k", "m", "attack rounds", "accept PRG",
			"accept uniform", "advantage"},
	}
	r := rng.New(cfg.Seed + 9)
	trials := cfg.trials(100)
	shapeOK := true
	for _, k := range []int{4, 6, 8, 12} {
		n, m := 48, 3*k
		gen := core.FullPRG{K: k, M: m}
		attack := &core.RankAttack{N: n, K: k}
		rep, err := core.MeasureAttack(attack,
			func(s *rng.Stream) ([]bitvec.Vector, error) {
				outs, _, err := gen.Generate(n, s)
				return outs, err
			},
			func(s *rng.Stream) ([]bitvec.Vector, error) {
				return core.UniformInputs(n, m, s), nil
			},
			trials, cfg.workers(), r)
		if err != nil {
			return nil, err
		}
		if rep.AcceptPRG < 1 || rep.AcceptUniform > 0.05 {
			shapeOK = false
		}
		t.AddRow(d(n), d(k), d(m), d(attack.Rounds()), f(rep.AcceptPRG),
			f(rep.AcceptUniform), f(rep.Advantage()))
	}
	if shapeOK {
		t.Shape = "holds: perfect completeness, exponentially small false-accept, O(k) rounds"
	} else {
		t.Shape = "SHAPE MISMATCH"
	}
	return t, nil
}

// E14SeedCrossover is the ablation pinning the Θ(k) security threshold:
// the rank statistic over the first j broadcast coordinates has zero
// advantage for j ≤ k and full advantage for j ≥ k+1.
func E14SeedCrossover(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E14",
		Title: "security crossover at j = k columns",
		Claim: "Theorems 1.3 and 8.1 are tight: j ≤ k broadcast bits reveal nothing, j = k+1 break the generator",
		Columns: []string{"n", "k", "columns j", "distinguish rate",
			"expected"},
	}
	r := rng.New(cfg.Seed + 10)
	trials := cfg.trials(60)
	const n, k, m = 48, 8, 24
	gen := core.FullPRG{K: k, M: m}
	shapeOK := true
	for _, j := range []int{k - 2, k - 1, k, k + 1, k + 2} {
		rate, err := core.MeasureRankCrossover(gen, n, j, trials, cfg.workers(), r)
		if err != nil {
			return nil, err
		}
		want := s("≈0 (below crossover)")
		if j > k {
			want = s("≈1 (above crossover)")
		}
		if j <= k && rate > 0.2 {
			shapeOK = false
		}
		if j > k && rate < 0.8 {
			shapeOK = false
		}
		t.AddRow(d(n), d(k), d(j), f(rate), want)
	}
	if shapeOK {
		t.Shape = "holds: sharp 0→1 transition exactly between j = k and j = k+1"
	} else {
		t.Shape = "SHAPE MISMATCH: transition not at k"
	}
	return t, nil
}
