package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestRecoveryTablesWorkerInvariant pins the fingerprint contract for
// the seconds-class recovery experiments: the canonical JSON encoding
// of an E19 or E20 table is byte-identical at every worker count, so
// Workers stays out of Params and one cached table serves all pool
// sizes.
func TestRecoveryTablesWorkerInvariant(t *testing.T) {
	for _, exp := range []Experiment{
		{ID: "E19", Run: E19SpectralVsDegree},
		{ID: "E20", Run: E20MessagePassingSweep},
	} {
		var ref []byte
		for i, w := range []int{1, 2, 8} {
			table, err := exp.Run(Config{Seed: 3, Quick: true, Workers: w})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", exp.ID, w, err)
			}
			enc, err := table.CanonicalJSON()
			if err != nil {
				t.Fatal(err)
			}
			if i == 0 {
				ref = enc
				continue
			}
			if !bytes.Equal(enc, ref) {
				t.Fatalf("%s: canonical encoding at workers=%d differs from workers=1", exp.ID, w)
			}
		}
	}
}

// TestRecoveryTablesPairedRows checks the paired structure of E19: each
// (n, k) case contributes one degree-protocol row and one spectral row,
// in that order, with equal trial counts — the visible trace that both
// engines consumed the same instance slice.
func TestRecoveryTablesPairedRows(t *testing.T) {
	table, err := E19SpectralVsDegree(Config{Seed: 5, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows)%2 != 0 {
		t.Fatalf("E19 rows not paired: %d rows", len(table.Rows))
	}
	for i := 0; i < len(table.Rows); i += 2 {
		deg, spec := table.Rows[i], table.Rows[i+1]
		// n, k, trials agree within a pair; engines differ as labeled.
		for _, col := range []int{0, 1, 3} {
			if deg[col] != spec[col] {
				t.Fatalf("pair %d: column %d differs: %+v vs %+v", i/2, col, deg[col], spec[col])
			}
		}
		if !strings.Contains(deg[2].String(), "degree") || spec[2].String() != "spectral" {
			t.Fatalf("pair %d: engine labels %q / %q", i/2, deg[2].String(), spec[2].String())
		}
	}
}

// TestE20SweepsBothEngines: every c value carries one bp and one amp
// row on the same k.
func TestE20SweepsBothEngines(t *testing.T) {
	table, err := E20MessagePassingSweep(Config{Seed: 5, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 8 {
		t.Fatalf("E20 produced %d rows, want 8 (4 c-values × 2 engines)", len(table.Rows))
	}
	for i := 0; i < len(table.Rows); i += 2 {
		bp, amp := table.Rows[i], table.Rows[i+1]
		if bp[1] != amp[1] {
			t.Fatalf("c-group %d: bp and amp ran different k: %+v vs %+v", i/2, bp[1], amp[1])
		}
		if bp[3].String() != "bp" || amp[3].String() != "amp" {
			t.Fatalf("c-group %d: engine labels %q / %q", i/2, bp[3].String(), amp[3].String())
		}
	}
}
