package experiments

import (
	"strings"
	"testing"
)

// TestAllExperimentsRunQuick executes every registered experiment in quick
// mode with a fixed seed and checks structural invariants plus the shape
// verdicts: an experiment declaring a violation means the reproduction
// disagrees with the paper and must fail loudly.
func TestAllExperimentsRunQuick(t *testing.T) {
	cfg := Config{Seed: 7, Quick: true}
	// The exhaustive-enumeration experiments dominate the race-detector
	// run; skip them under -short so CI stays within time limits.
	exhaustive := map[string]bool{"E5": true, "E12": true, "E18": true}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			if testing.Short() && exhaustive[e.ID] {
				t.Skipf("%s enumerates exhaustively; skipped in -short mode", e.ID)
			}
			table, err := e.Run(cfg)
			if err != nil {
				t.Fatalf("%s failed: %v", e.ID, err)
			}
			if table.ID != e.ID {
				t.Fatalf("table id %q, want %q", table.ID, e.ID)
			}
			if len(table.Rows) == 0 {
				t.Fatal("experiment produced no rows")
			}
			for i, row := range table.Rows {
				if len(row) != len(table.Columns) {
					t.Fatalf("row %d has %d cells, header has %d", i, len(row), len(table.Columns))
				}
			}
			if strings.Contains(table.Shape, "VIOLATION") || strings.Contains(table.Shape, "MISMATCH") {
				t.Fatalf("%s shape check failed: %s", e.ID, table.Shape)
			}
		})
	}
}

func TestExperimentsDeterministicGivenSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the exact E5 enumeration twice; skipped in -short mode")
	}
	cfg := Config{Seed: 11, Quick: true}
	// E5 is cheap and fully exact: two runs must agree cell for cell.
	a, err := E5FourierLemma(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := E5FourierLemma(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != len(b.Rows) {
		t.Fatal("row counts differ between identical runs")
	}
	for i := range a.Rows {
		for j := range a.Rows[i] {
			if a.Rows[i][j] != b.Rows[i][j] {
				t.Fatalf("cell (%d,%d) differs: %+v vs %+v", i, j, a.Rows[i][j], b.Rows[i][j])
			}
		}
	}
	if !a.Equal(b) {
		t.Fatal("canonical encodings differ between identical runs")
	}
}

func TestTableRender(t *testing.T) {
	table := &Table{
		ID:      "EX",
		Title:   "demo",
		Claim:   "claim text",
		Columns: []string{"a", "b"},
		Shape:   "holds",
	}
	table.AddRow(d(1), d(2))
	var sb strings.Builder
	table.Render(&sb)
	out := sb.String()
	for _, want := range []string{"### EX", "claim text", "| a | b |", "| 1 | 2 |", "Shape: holds"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestConfigTrials(t *testing.T) {
	full := Config{}
	quick := Config{Quick: true}
	if full.trials(100) != 100 {
		t.Fatal("full config rescaled trials")
	}
	if got := quick.trials(100); got != 20 {
		t.Fatalf("quick trials = %d, want 20", got)
	}
	if got := quick.trials(10); got != 4 {
		t.Fatalf("quick floor = %d, want 4", got)
	}
}

func TestRegistryComplete(t *testing.T) {
	ids := make(map[string]bool)
	for _, e := range All() {
		if ids[e.ID] {
			t.Fatalf("duplicate experiment id %s", e.ID)
		}
		ids[e.ID] = true
	}
	for _, want := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18", "E19", "E20"} {
		if !ids[want] {
			t.Fatalf("experiment %s missing from registry", want)
		}
		e, ok := ByID(want)
		if !ok || e.ID != want {
			t.Fatalf("ByID(%s) = (%v, %v)", want, e.ID, ok)
		}
	}
	if _, ok := ByID("E99"); ok {
		t.Fatal("ByID accepted an unknown id")
	}
}

func TestFingerprintTracksParams(t *testing.T) {
	base := (Config{Seed: 1}).Fingerprint("E3")
	if (Config{Seed: 1, Workers: 8}).Fingerprint("E3") != base {
		t.Fatal("worker count changed the fingerprint — it must not fragment the cache")
	}
	if (Config{Seed: 2}).Fingerprint("E3") == base {
		t.Fatal("seed did not change the fingerprint")
	}
	if (Config{Seed: 1, Quick: true}).Fingerprint("E3") == base {
		t.Fatal("quick mode did not change the fingerprint")
	}
}
