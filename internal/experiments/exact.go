package experiments

import (
	"repro/internal/bcast"
	"repro/internal/cliquefind"
	"repro/internal/lowerbound"
	"repro/internal/result"
)

// E18ExactLowerBound tabulates the planted-clique lower-bound quantities
// of Theorems 1.6 and 4.1 exactly — no Monte-Carlo error at all — by
// enumerating the entire input space with the sharded exact engine: at
// n = 5 that is the 2^20-mask A^5_rand space and, per clique size k, the
// C(5,k)·2^(20−k(k−1)) planted mixture. For every probe protocol and
// prefix length t the table reports the exact L_real(t) =
// ‖P(Π,A_k)−P(Π,A_rand)‖ next to the exact progress function L(t) and
// the closed-form theorem budget; the Section 3 chain L_real ≤
// L_progress ≤ bound must hold row for row.
//
// The full n = 5 sweep runs millions of exact protocol executions and is
// meant for full local runs; Quick mode scales down to the n = 4 space
// (2^12 masks) so CI still exercises every code path.
//
// Exact enumeration consumes no randomness, so E18's table is the same
// for every seed; its fingerprint still includes the seed (the uniform
// Params contract), which means a store caches one identical copy per
// requested seed. That redundancy is accepted: serving E18 for a seed
// already cached is free, and a per-experiment seed-independence flag
// is not worth complicating the fingerprint contract for one entry.
func E18ExactLowerBound(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E18",
		Title: "exact planted-clique lower-bound tables",
		Claim: "exactly enumerated transcript distances satisfy L_real(t) ≤ L_progress(t) ≤ O(k²/√n) (1 round, Thm 1.6) and O(j·k²·√((j+log n)/n)) (j rounds, Thm 4.1)",
		Columns: []string{"n", "k", "probe", "turns t", "L_real(t)",
			"L_progress(t)", "bound", "theorem"},
	}
	n := 5
	if cfg.Quick {
		n = 4
	}
	shapeOK := true
	for _, k := range []int{2, 3} {
		type probe struct {
			name   string
			p      bcast.Protocol
			rounds int
		}
		probes := []probe{
			{"degree detector", &cliquefind.DegreeDetector{N: n, K: k}, 1},
			{"reveal-bits", &revealBitsProtocol{rounds: 1}, 1},
			{"reveal-bits", &revealBitsProtocol{rounds: 2}, 2},
		}
		for _, pr := range probes {
			if err := cfg.Err(); err != nil {
				return nil, err
			}
			turns := pr.rounds * n
			real, progress, err := lowerbound.ExactProgressPlantedClique(pr.p, n, k, turns, cfg.workers())
			if err != nil {
				return nil, err
			}
			bound := lowerbound.Theorem16Bound(n, k)
			theorem := "1.6"
			if pr.rounds > 1 {
				bound = lowerbound.Theorem41Bound(n, k, pr.rounds)
				theorem = "4.1"
			}
			if real > progress+1e-9 || real > bound {
				shapeOK = false
			}
			t.AddRow(d(n), d(k), s(pr.name), d(turns), f(real), f(progress),
				f(bound).WithBound(result.BoundUpper), s(theorem))
		}
	}
	if shapeOK {
		t.Shape = "holds: exact L_real ≤ L_progress ≤ theorem budget on every row"
	} else {
		t.Shape = "VIOLATION: an exactly computed distance exceeded its bound"
	}
	return t, nil
}
