package experiments

import (
	"math"
	"math/bits"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/fourier"
	"repro/internal/lowerbound"
	"repro/internal/result"
	"repro/internal/rng"
)

// E1SingleBitLemma measures the Lemma 1.10 quantity
// E_i ‖f(U) − f(U^[i])‖ exactly (full enumeration) for random Boolean
// functions across n, and reports the ratio to 1/√n: the lemma asserts the
// ratio is bounded by a constant (the proof gives 2).
func E1SingleBitLemma(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E1",
		Title: "Lemma 1.10 single-coordinate restriction distance",
		Claim: "E_i ||f(U) − f(U^[i])|| ≤ O(1/√n) for every Boolean f",
		Columns: []string{"n", "functions", "mean E_i||·||", "max E_i||·||",
			"bound 2/√n", "mean ratio to 1/√n"},
	}
	funcs := cfg.trials(40)
	r := rng.New(cfg.Seed)
	violated := false
	for _, n := range []int{8, 12, 16, 20} {
		mean, max := 0.0, 0.0
		for i := 0; i < funcs; i++ {
			fn := fourier.FromBool(n, func(uint64) bool { return r.Bool() })
			v := fn.InfluenceBound()
			mean += v
			if v > max {
				max = v
			}
		}
		mean /= float64(funcs)
		bound := lowerbound.Lemma110Bound(n)
		if max > bound {
			violated = true
		}
		t.AddRow(d(n), d(funcs), f(mean), f(max),
			f(bound).WithBound(result.BoundUpper), f(mean*math.Sqrt(float64(n))))
	}
	if violated {
		t.Shape = "VIOLATION: some function exceeded the 2/√n bound"
	} else {
		t.Shape = "holds: every tested f stays below 2/√n; ratio to 1/√n stays O(1)"
	}
	return t, nil
}

// E2CliqueRestriction measures the Lemma 1.8 quantity
// E_C ‖f(U) − f(U^C)‖ exactly over all size-k subsets, for random f,
// confirming the O(k/√n) growth.
func E2CliqueRestriction(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E2",
		Title: "Lemma 1.8 subset-restriction distance",
		Claim: "E_C ||f(U) − f(U^C)|| ≤ O(k/√n) for k ≤ n^{1/4}",
		Columns: []string{"n", "k", "functions", "mean E_C||·||", "bound 2k/√n",
			"ratio to k/√n"},
	}
	funcs := cfg.trials(15)
	r := rng.New(cfg.Seed + 1)
	violated := false
	for _, n := range []int{12, 16} {
		for _, k := range []int{1, 2, 3} {
			mean := 0.0
			for i := 0; i < funcs; i++ {
				fn := fourier.FromBool(n, func(uint64) bool { return r.Bool() })
				mean += fn.SubsetRestrictionDistance(k, dist.ForEachSubset)
			}
			mean /= float64(funcs)
			bound := lowerbound.Lemma18Bound(n, k)
			if mean > bound {
				violated = true
			}
			t.AddRow(d(n), d(k), d(funcs), f(mean), f(bound).WithBound(result.BoundUpper),
				f(mean*math.Sqrt(float64(n))/float64(k)))
		}
	}
	if violated {
		t.Shape = "VIOLATION: mean exceeded 2k/√n"
	} else {
		t.Shape = "holds: linear growth in k, 1/√n decay in n"
	}
	return t, nil
}

// E5FourierLemma verifies Lemma 5.2 exactly for random and structured
// Boolean functions: Σ_b ‖f(U_{k+1}) − f(U_[b])‖² ≤ E[f].
func E5FourierLemma(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E5",
		Title:   "Lemma 5.2 spectral bound",
		Claim:   "Σ_b ||f(U_{k+1}) − f(U_[b])||² ≤ E[f] for every Boolean f",
		Columns: []string{"k", "function", "lhs", "rhs = E[f]", "slack"},
	}
	r := rng.New(cfg.Seed + 2)
	mk := map[string]func(n int) *fourier.Func{
		"random": func(n int) *fourier.Func {
			return fourier.FromBool(n, func(uint64) bool { return r.Bool() })
		},
		"majority": func(n int) *fourier.Func {
			return fourier.FromBool(n, func(x uint64) bool { return bits.OnesCount64(x) > n/2 })
		},
		"parity": func(n int) *fourier.Func {
			return fourier.FromBool(n, func(x uint64) bool { return bits.OnesCount64(x)&1 == 1 })
		},
		"last-bit": func(n int) *fourier.Func {
			return fourier.FromBool(n, func(x uint64) bool { return x>>(n-1)&1 == 1 })
		},
	}
	violated := false
	for _, k := range []int{6, 10, 14} {
		for _, name := range []string{"random", "majority", "parity", "last-bit"} {
			fn := mk[name](k + 1)
			lhs, rhs := fn.Lemma52()
			if lhs > rhs+1e-9 {
				violated = true
			}
			t.AddRow(d(k), s(name), fp(lhs, 6), fp(rhs, 6).WithBound(result.BoundUpper), fp(rhs-lhs, 6))
		}
	}
	if violated {
		t.Shape = "VIOLATION: the lemma is a theorem; this is an implementation bug"
	} else {
		t.Shape = "holds exactly for every tested function (it is a theorem)"
	}
	return t, nil
}

// E13SupportConcentration measures Claims 5/8: for large D ⊆ {0,1}^{k+1},
// N_b/N_D concentrates at 1/2 with deviation ~2^{−k/8}.
func E13SupportConcentration(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E13",
		Title: "Claims 5/8 support concentration",
		Claim: "for |D| ≥ 2^{k/2}, |N_b/N_D − 1/2| < 2^{−k/8} for all but a 2^{−k/8} fraction of b",
		Columns: []string{"k", "density of D", "N_D", "mean dev", "max dev",
			"claim scale 2^{−k/8}"},
	}
	r := rng.New(cfg.Seed + 3)
	shapeOK := true
	for _, k := range []int{8, 10, 12} {
		for _, density := range []float64{0.5, 0.1} {
			size := uint64(1) << uint(k+1)
			member := make([]bool, size)
			for x := range member {
				member[x] = r.Bernoulli(density)
			}
			nd, maxDev, meanDev := core.SupportConcentration(k, func(x uint64) bool { return member[x] })
			scale := math.Exp2(-float64(k) / 8)
			// The mean deviation should be well within the claim's scale;
			// the max may exceed it on the permitted small fraction of b.
			if meanDev > scale {
				shapeOK = false
			}
			t.AddRow(d(k), f(density), d(nd), fp(meanDev, 5),
				fp(maxDev, 5), fp(scale, 5).WithBound(result.BoundUpper))
		}
	}
	if shapeOK {
		t.Shape = "holds: mean deviation well below 2^{−k/8} and shrinking with k"
	} else {
		t.Shape = "VIOLATION: mean deviation above the claim scale"
	}
	return t, nil
}
