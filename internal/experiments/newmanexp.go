package experiments

import (
	"repro/internal/bitvec"
	"repro/internal/newman"
	"repro/internal/rng"
)

// E11Newman reproduces Theorem A.1 empirically: the equality protocol's
// k·m public coins are replaced by a ⌈log₂T⌉-coin palette selection, and
// the simulation error ε is measured as the TV between execution
// distributions on a worst-ish-case input (two inputs differing in one
// bit). Larger palettes drive ε down, at a logarithmic price in coins.
func E11Newman(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E11",
		Title: "Newman's theorem in BCAST(1)",
		Claim: "O(kn + log m + log 1/ε) public coins ε-simulate any public-coin protocol",
		Columns: []string{"palette T", "public coins used", "original coins",
			"measured ε", "equality error preserved?"},
	}
	r := rng.New(cfg.Seed + 13)
	const n, m, k = 6, 16, 2
	p := &newman.EqualityProtocol{N: n, M: m, K: k}

	// A hard input: all processors equal except one differing in one bit.
	x := bitvec.Random(m, r)
	inputs := make([]bitvec.Vector, n)
	for i := range inputs {
		inputs[i] = x.Clone()
	}
	odd := x.Clone()
	odd.FlipBit(3)
	inputs[n/2] = odd

	trials := cfg.trials(4000)
	prev := 2.0
	shapeOK := true
	for _, paletteSize := range []int{1, 4, 64, 1024} {
		s, err := newman.Sparsify(p, paletteSize, r)
		if err != nil {
			return nil, err
		}
		gap, err := newman.SimulationGap(p, s, inputs, trials, cfg.workers(), r)
		if err != nil {
			return nil, err
		}
		// Check the simulated protocol still catches the inequality at
		// roughly the 1−2^{−k} rate.
		caught := 0
		probe := cfg.trials(400)
		for i := 0; i < probe; i++ {
			res, err := s.RunWithFreshIndex(inputs, r, r.Uint64())
			if err != nil {
				return nil, err
			}
			if !newman.EqualityVerdict(res.Transcript) {
				caught++
			}
		}
		catchRate := float64(caught) / float64(probe)
		soundnessOK := paletteSize == 1 || catchRate > 0.5
		if gap > prev+0.05 {
			shapeOK = false
		}
		prev = gap
		t.AddRow(d(paletteSize), d(s.PublicBitsNeeded()), d(p.PublicBits()),
			f(gap), sf("catch rate %.3f (%s)", catchRate, boolCell(soundnessOK)))
	}
	if shapeOK {
		t.Shape = "holds: ε shrinks as the palette grows while coins grow only logarithmically"
	} else {
		t.Shape = "SHAPE MISMATCH: ε did not decrease with palette size"
	}
	return t, nil
}
