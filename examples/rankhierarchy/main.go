// Rank hierarchy: Theorems 1.4 and 1.5 as a staircase. The protocol that
// reveals the top k×k minor column by column is exact at k rounds; every
// truncation is pinned near 1 − Q₀ ≈ 0.711 accuracy — the Bayes ceiling
// for a referee that hasn't seen everything. The example also shows the
// hard distribution behind Theorem 1.4: matrices [X | X·b] are never full
// rank yet fool every low-round protocol.
package main

import (
	"fmt"
	"os"

	"repro/internal/f2"
	"repro/internal/rankprot"
	"repro/internal/rng"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rankhierarchy:", err)
		os.Exit(1)
	}
}

func run() error {
	r := rng.New(1)
	const n, k, trials = 32, 16, 400

	fmt.Printf("Kolchin's rank law for uniform GF(2) matrices (Theorem 1.4's constants):\n")
	for s := 0; s <= 3; s++ {
		fmt.Printf("  P[rank = n−%d] -> Q_%d = %.10f\n", s, s, f2.KolchinQ(s))
	}

	fmt.Printf("\naccuracy of the top-%d×%d-minor protocol vs rounds (n=%d, %d trials):\n",
		k, k, n, trials)
	for _, rounds := range []int{1, k / 4, k / 2, k - 1, k} {
		p, err := rankprot.NewTruncated(n, k, rounds)
		if err != nil {
			return err
		}
		rep, err := rankprot.MeasureAccuracy(p, trials, 0, r)
		if err != nil {
			return err
		}
		marker := ""
		if rounds == k {
			marker = "  <- exact at k rounds (Theorem 1.5 upper side)"
		}
		fmt.Printf("  %2d rounds: accuracy %.3f%s\n", rounds, rep.Accuracy, marker)
	}
	fmt.Printf("  Bayes ceiling below k rounds: 1 − Q₀ = %.3f\n", 1-f2.KolchinQ(0))

	fmt.Println("\nTheorem 1.4's hard distribution [X | X·b]:")
	deficient := 0
	const hardTrials = 200
	for i := 0; i < hardTrials; i++ {
		rows, _ := rankprot.BracketedInputs(n, r)
		m, err := f2.FromRows(rows)
		if err != nil {
			return err
		}
		if !m.FullRank() {
			deficient++
		}
	}
	fmt.Printf("  rank-deficient in %d/%d samples (always, by construction)\n", deficient, hardTrials)
	fmt.Println("  yet by Theorem 5.3 no n/20-round protocol distinguishes it from uniform,")
	fmt.Println("  so none can compute F_full-rank with probability above 0.99.")
	return nil
}
