// Planted clique across the parameter spectrum: this example walks the
// paper's "interesting range" (Section 1.2). For a fixed n it shows that
//
//   - at k = n^{1/4} the natural one-round degree protocol is blind
//     (Corollary 1.7 says every one-round protocol is);
//   - at k ≈ 3√(n·ln n) the same protocol detects the clique reliably;
//   - at k ≥ log²n the Appendix B protocol doesn't just detect but
//     *recovers* the clique in O(n/k·polylog n) rounds.
package main

import (
	"fmt"
	"math"
	"os"

	"repro/internal/cliquefind"
	"repro/internal/graph"
	"repro/internal/lowerbound"
	"repro/internal/rng"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "plantedclique:", err)
		os.Exit(1)
	}
}

func run() error {
	const n = 256
	const trials = 40
	r := rng.New(2019)
	bands := lowerbound.RangeFor(n)
	fmt.Printf("n = %d: log²n = %.0f, n^(1/4) = %.0f, √n = %.0f\n\n",
		n, bands.LogSquared, bands.FourthRoot, bands.RootN)

	fmt.Println("one-round degree detector advantage across k:")
	for _, k := range []int{
		int(bands.FourthRoot),
		int(bands.RootN),
		int(3 * math.Sqrt(float64(n)*math.Log(float64(n)))),
	} {
		det := &cliquefind.DegreeDetector{N: n, K: k}
		rep, err := cliquefind.MeasureDetector(det, n, k, trials, 0, r)
		if err != nil {
			return err
		}
		fmt.Printf("  k = %3d: advantage %.3f  (Thm 1.6 scale k²/√n = %.2f)\n",
			k, rep.Advantage(), lowerbound.Theorem16Bound(n, k))
	}

	fmt.Println("\nAppendix B recovery protocol:")
	for _, k := range []int{80, 128, 192} {
		p, err := cliquefind.NewSampleAndSolve(n, k)
		if err != nil {
			return err
		}
		exact := 0
		const recTrials = 10
		for i := 0; i < recTrials; i++ {
			g, clique, err := graph.SamplePlanted(n, k, r)
			if err != nil {
				return err
			}
			got, ok, err := cliquefind.RunOnGraph(p, g, r.Uint64())
			if err != nil {
				return err
			}
			if ok && cliquefind.SameSet(got, clique) {
				exact++
			}
		}
		fmt.Printf("  k = %3d: %3d rounds, exact recovery %d/%d\n",
			k, p.Rounds(), exact, recTrials)
	}

	fmt.Println("\nnote how rounds fall as k grows: the Theorem B.1 budget is 2n·log²n/k.")
	return nil
}
