// Quickstart: the one-screen tour — run a protocol on the Broadcast
// Congested Clique simulator, generate pseudorandom bits with the paper's
// PRG, and break them with the seed-optimality attack.
package main

import (
	"fmt"
	"os"

	"repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. Generate pseudorandom bits: 16 processors turn 8-bit private
	//    seeds into 32-bit pseudorandom strings over a handful of
	//    BCAST(1) rounds (Theorem 1.3).
	outputs, rounds, err := repro.GeneratePseudorandom(16, 8, 32, 42)
	if err != nil {
		return err
	}
	fmt.Printf("PRG: 16 processors, 8-bit seeds -> 32-bit outputs in %d rounds\n", rounds)
	for i, o := range outputs[:4] {
		fmt.Printf("  processor %d output: %s\n", i, o)
	}
	fmt.Println("  ...")

	// 2. Break them: the Theorem 8.1 rank attack recognizes PRG outputs
	//    with certainty using k+1 = 9 rounds.
	isPRG, err := repro.BreakPseudorandom(outputs, 8, 43)
	if err != nil {
		return err
	}
	fmt.Printf("rank attack verdict on the PRG outputs: %v (seed-length bound is tight)\n\n", isPRG)

	// 3. Planted clique: sample A_k and recover the hidden clique with
	//    the Appendix B protocol.
	g, planted, err := repro.SamplePlantedGraph(96, 48, 44)
	if err != nil {
		return err
	}
	clique, ok, err := repro.FindPlantedClique(g, 48, 45)
	if err != nil {
		return err
	}
	fmt.Printf("planted clique: hid %d vertices, protocol recovered %d (ok=%v)\n",
		len(planted), len(clique), ok)
	fmt.Printf("  first planted vertices:   %v\n", planted[:8])
	fmt.Printf("  first recovered vertices: %v\n\n", clique[:8])

	// 4. Public-coin equality (the Appendix A running example).
	same := []repro.Vector{outputs[0], outputs[0], outputs[0]}
	eq, err := repro.CheckEquality(same, 10, 46)
	if err != nil {
		return err
	}
	fmt.Printf("equality protocol on identical inputs: %v\n", eq)
	mixed := []repro.Vector{outputs[0], outputs[1], outputs[0]}
	eq, err = repro.CheckEquality(mixed, 10, 47)
	if err != nil {
		return err
	}
	fmt.Printf("equality protocol on differing inputs: %v (error prob 2^-10)\n", eq)
	return nil
}
