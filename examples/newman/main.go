// Newman's theorem in BCAST(1) (Appendix A): the public-coin equality
// protocol spends k·m shared random bits; the sparsified simulation keeps
// a fixed palette of T pre-drawn strings and publicly picks one index —
// ⌈log₂T⌉ coins. This example sweeps the palette size and prints the
// simulation error ε actually achieved, the coins used, and whether the
// protocol's soundness survives.
package main

import (
	"fmt"
	"os"

	"repro/internal/bitvec"
	"repro/internal/newman"
	"repro/internal/rng"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "newman:", err)
		os.Exit(1)
	}
}

func run() error {
	const n, m, k = 6, 16, 2
	r := rng.New(99)
	p := &newman.EqualityProtocol{N: n, M: m, K: k}

	// A worst-ish case input: all equal except one bit of one processor.
	x := bitvec.Random(m, r)
	inputs := make([]bitvec.Vector, n)
	for i := range inputs {
		inputs[i] = x.Clone()
	}
	odd := x.Clone()
	odd.FlipBit(5)
	inputs[n/2] = odd

	fmt.Printf("equality protocol: n=%d processors, m=%d input bits, k=%d fingerprint rounds\n", n, m, k)
	fmt.Printf("original public coins: %d\n\n", p.PublicBits())
	fmt.Printf("%-10s %-12s %-12s %s\n", "palette T", "coins used", "measured ε", "inequality caught")

	for _, T := range []int{1, 8, 128, 2048} {
		s, err := newman.Sparsify(p, T, r)
		if err != nil {
			return err
		}
		gap, err := newman.SimulationGap(p, s, inputs, 4000, 0, r)
		if err != nil {
			return err
		}
		caught := 0
		const probes = 200
		for i := 0; i < probes; i++ {
			res, err := s.RunWithFreshIndex(inputs, r, r.Uint64())
			if err != nil {
				return err
			}
			if !newman.EqualityVerdict(res.Transcript) {
				caught++
			}
		}
		fmt.Printf("%-10d %-12d %-12.4f %d/%d\n", T, s.PublicBitsNeeded(), gap, caught, probes)
	}

	fmt.Println("\nTheorem A.1: O(kn + log m + log 1/ε) coins always suffice; the palette")
	fmt.Println("trade is logarithmic coins for linearly shrinking ε — but the strings are")
	fmt.Println("fixed non-uniformly, which is why the paper calls Newman's technique")
	fmt.Println("computationally inefficient and builds the PRG instead.")
	return nil
}
