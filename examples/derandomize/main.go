// Derandomize: the Corollary 7.1 transform in action. A randomized
// sampling protocol estimates the global density of 1s across all
// processors' inputs by broadcasting randomly chosen input bits — spending
// j·log₂(m) private random bits per processor. The transform replaces
// those coins with the paper's PRG: each processor now spends only O(k)
// private bits, the round count grows by the O(k) construction preamble,
// and the estimates remain statistically indistinguishable.
package main

import (
	"fmt"
	"math"
	"os"

	"repro/internal/bcast"
	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/rng"
)

// samplingProtocol is a TapeProtocol: over J rounds each processor
// broadcasts the input bit at a tape-selected position; everyone estimates
// the global density as the mean of all broadcast bits.
type samplingProtocol struct {
	n, m, j int
}

func (p *samplingProtocol) Name() string     { return "density-sampling" }
func (p *samplingProtocol) MessageBits() int { return 1 }
func (p *samplingProtocol) Rounds() int      { return p.j }

// posBits is the tape spend per sample: log₂(m) bits choose a position.
func (p *samplingProtocol) posBits() int {
	b := 1
	for 1<<uint(b) < p.m {
		b++
	}
	return b
}

// TapeBits implements core.TapeProtocol.
func (p *samplingProtocol) TapeBits() int { return p.j * p.posBits() }

// NewTapeNode implements core.TapeProtocol.
func (p *samplingProtocol) NewTapeNode(_ int, input bitvec.Vector, tape bitvec.Vector) bcast.Node {
	round := 0
	return bcast.NodeFunc(func(*bcast.Transcript) uint64 {
		pos := 0
		for b := 0; b < p.posBits(); b++ {
			pos = pos<<1 | int(tape.Bit(round*p.posBits()+b))
		}
		round++
		return input.Bit(pos % p.m)
	})
}

// estimate reads the density estimate off a finished transcript.
func estimate(t *bcast.Transcript, skipRounds int) float64 {
	ones, total := 0, 0
	for r := skipRounds; r < t.CompleteRounds(); r++ {
		for _, msg := range t.RoundMessages(r) {
			ones += int(msg)
			total++
		}
	}
	return float64(ones) / float64(total)
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "derandomize:", err)
		os.Exit(1)
	}
}

func run() error {
	const n, m, j, k = 64, 256, 24, 16
	r := rng.New(7)

	// Inputs with a known density of 1s.
	const density = 0.3
	inputs := make([]bitvec.Vector, n)
	for i := range inputs {
		v := bitvec.New(m)
		for b := 0; b < m; b++ {
			if r.Bernoulli(density) {
				v.SetBit(b, 1)
			}
		}
		inputs[i] = v
	}

	inner := &samplingProtocol{n: n, m: m, j: j}
	truly := core.WithTrueRandomness(inner)
	derand := &core.Derandomized{Inner: inner, N: n, K: k}

	fmt.Printf("density estimation: n=%d processors, m=%d input bits, true density %.2f\n\n", n, m, density)
	fmt.Printf("randomized protocol:   %2d rounds, %3d random bits per processor\n",
		truly.Rounds(), inner.TapeBits())
	fmt.Printf("derandomized (Cor 7.1): %2d rounds, %3d random bits per processor\n\n",
		derand.Rounds(), derand.RandomBitsPerProcessor())

	const runs = 30
	var errTrue, errPRG float64
	for i := 0; i < runs; i++ {
		resT, err := bcast.RunRounds(truly, inputs, r.Uint64())
		if err != nil {
			return err
		}
		errTrue += math.Abs(estimate(resT.Transcript, 0) - density)

		resP, err := bcast.RunRounds(derand, inputs, r.Uint64())
		if err != nil {
			return err
		}
		errPRG += math.Abs(estimate(resP.Transcript, derand.ConstructionRounds()) - density)
	}
	fmt.Printf("mean estimation error over %d runs:\n", runs)
	fmt.Printf("  true randomness:  %.4f\n", errTrue/runs)
	fmt.Printf("  PRG randomness:   %.4f\n", errPRG/runs)
	fmt.Println("\nby Theorem 5.4 no Ω(k)-round protocol — including this one — can tell the difference.")
	return nil
}
