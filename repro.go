package repro

import (
	"fmt"
	"io"

	"repro/internal/bcast"
	"repro/internal/bitvec"
	"repro/internal/cliquefind"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/frontier"
	"repro/internal/graph"
	"repro/internal/newman"
	"repro/internal/rng"
)

// Re-exported core types: the library's public API surface. The aliased
// types are fully documented at their definitions.
type (
	// Protocol is a Broadcast Congested Clique protocol.
	Protocol = bcast.Protocol
	// Node is one processor's logic.
	Node = bcast.Node
	// Transcript is the shared broadcast history.
	Transcript = bcast.Transcript
	// Result is a finished protocol execution.
	Result = bcast.Result
	// Vector is a packed GF(2) bit vector.
	Vector = bitvec.Vector
	// Digraph is a directed graph given to the planted-clique protocols.
	Digraph = graph.Digraph
	// ToyPRG is the single-extra-bit generator of Sections 5-6.
	ToyPRG = core.ToyPRG
	// FullPRG is the Theorem 1.3 generator.
	FullPRG = core.FullPRG
	// ExperimentConfig controls the reproduction harness.
	ExperimentConfig = experiments.Config
)

// RunRounds executes a protocol in the simultaneous-round model.
func RunRounds(p Protocol, inputs []Vector, seed uint64) (*Result, error) {
	return bcast.RunRounds(p, inputs, seed)
}

// RunConcurrent executes a protocol with one goroutine per processor.
func RunConcurrent(p Protocol, inputs []Vector, seed uint64) (*Result, error) {
	return bcast.RunConcurrent(p, inputs, seed)
}

// GeneratePseudorandom runs the Theorem 1.3 construction protocol on n
// processors and returns each processor's m-bit pseudorandom string along
// with the number of BCAST(1) rounds spent.
func GeneratePseudorandom(n, k, m int, seed uint64) (outputs []Vector, rounds int, err error) {
	gen := FullPRG{K: k, M: m}
	if err := gen.Validate(); err != nil {
		return nil, 0, err
	}
	proto := &core.ConstructionProtocol{N: n, Gen: gen}
	r := rng.New(seed)
	res, err := bcast.RunRounds(proto, proto.Inputs(r), r.Uint64())
	if err != nil {
		return nil, 0, err
	}
	return res.Outputs(), proto.Rounds(), nil
}

// BreakPseudorandom runs the Theorem 8.1 rank attack on per-processor
// strings, returning true when they are consistent with a seed-k PRG.
func BreakPseudorandom(outputs []Vector, k int, seed uint64) (bool, error) {
	if len(outputs) == 0 {
		return false, fmt.Errorf("repro: no outputs to attack")
	}
	attack := &core.RankAttack{N: len(outputs), K: k}
	return core.RunAttack(attack, outputs, seed)
}

// NewGraph returns an empty directed graph on n vertices, for callers
// building inputs by hand.
func NewGraph(n int) *Digraph { return graph.New(n) }

// SamplePlantedGraph draws from A_k: a random directed graph with a
// planted k-clique. It returns the graph and the planted set.
func SamplePlantedGraph(n, k int, seed uint64) (*Digraph, []int, error) {
	return graph.SamplePlanted(n, k, rng.New(seed))
}

// FindPlantedClique runs the Appendix B protocol on a graph and returns
// the recovered clique (ok is false when the protocol declined to answer).
func FindPlantedClique(g *Digraph, k int, seed uint64) (clique []int, ok bool, err error) {
	p, err := cliquefind.NewSampleAndSolve(g.N(), k)
	if err != nil {
		return nil, false, err
	}
	return cliquefind.RunOnGraph(p, g, seed)
}

// CheckEquality runs the public-coin equality protocol (the Appendix A
// running example) over the inputs with `rounds` fingerprint rounds and
// error probability 2^{−rounds}.
func CheckEquality(inputs []Vector, rounds int, seed uint64) (bool, error) {
	if len(inputs) == 0 {
		return false, fmt.Errorf("repro: no inputs")
	}
	p := &newman.EqualityProtocol{N: len(inputs), M: inputs[0].Len(), K: rounds}
	r := rng.New(seed)
	res, err := newman.RunWithFreshCoins(p, inputs, r, r.Uint64())
	if err != nil {
		return false, err
	}
	return newman.EqualityVerdict(res.Transcript), nil
}

// FindCliqueByDegree recovers a planted clique with the two-wide-round
// degree-ranking protocol, which works once k ≳ √(n·log n) (Section 1.2's
// remark). For smaller k use FindPlantedClique (Appendix B).
func FindCliqueByDegree(g *Digraph, k int, seed uint64) (clique []int, ok bool, err error) {
	p, err := cliquefind.NewDegreeRecover(g.N(), k)
	if err != nil {
		return nil, false, err
	}
	return cliquefind.RunDegreeRecover(p, g, seed)
}

// CheckConnectivity decides connectivity of a symmetric graph with the
// label-propagation protocol over the given number of BCAST(log n)
// rounds (use at least diameter+1 rounds; n always suffices).
func CheckConnectivity(g *Digraph, rounds int, seed uint64) (bool, error) {
	return frontier.RunConnectivity(g, rounds, seed)
}

// RunAllExperiments executes the full reproduction harness (E1..E18) and
// renders each table to w.
func RunAllExperiments(w io.Writer, cfg ExperimentConfig) error {
	for _, e := range experiments.All() {
		table, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("experiment %s: %w", e.ID, err)
		}
		table.Render(w)
	}
	return nil
}
